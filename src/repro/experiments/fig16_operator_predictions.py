"""Fig. 16 — predicted vs measured time for five representative operators.

The paper presents Add, RealDiv, ReduceMean, Conv2D, and BNTrainingUpdate
(execution times spanning ~20 us to ~300 us), showing each fitting
function's predictions and error rates across frequencies; Func. 2 tracks
the measured times closely in most cases.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rng import RngFactory
from repro.experiments.base import ExperimentResult
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    default_npu_spec,
)
from repro.perf import FitFunction, build_performance_model
from repro.workloads import build_trace, oplib

#: All nine grid frequencies are profiled; fits use the Sect. 4.3 subsets.
VALIDATION_FREQS = (1100.0, 1200.0, 1400.0, 1500.0, 1700.0)


def representative_operators():
    """The five Fig. 16 operators, sized for ~20-300 us at 1800 MHz."""
    return [
        oplib.elementwise("fig16.Add", "Add", 4_500_000, inputs=2),
        oplib.elementwise(
            "fig16.RealDiv", "RealDiv", 8_000_000, inputs=2,
            flops_per_element=2.0,
        ),
        oplib.reduction("fig16.ReduceMean", "ReduceMean", 18_000_000),
        oplib.conv2d("fig16.Conv2D", 64, 128, 160, 28, 28),
        oplib.normalization(
            "fig16.BNTrainingUpdate", "BNTrainingUpdate", 60_000_000
        ),
    ]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 16 per-operator prediction curves."""
    del scale  # the five operators have fixed representative sizes
    spec = default_npu_spec()
    device = NpuDevice(spec)
    profiler = CannStyleProfiler(spec, RngFactory(seed).generator("fig16"))
    ops = representative_operators()
    trace = build_trace("fig16", ops)
    reports = [
        profiler.profile(
            device.run(trace, FrequencyTimeline.constant(freq),
                       initial_celsius=60.0)
        )
        for freq in spec.frequencies.points
    ]
    models = {
        function: build_performance_model(reports, function=function)
        for function in FitFunction
    }
    measured_by_freq = {r.freq_label_mhz: r.durations_by_name() for r in reports}

    rows = []
    worst_func2 = 0.0
    for op in ops:
        for freq in VALIDATION_FREQS:
            actual = measured_by_freq[freq][op.name]
            row = {
                "operator": op.op_type,
                "freq_mhz": freq,
                "measured_us": round(actual, 2),
            }
            for function, model in models.items():
                predicted = model.predict_time_us(op.name, freq)
                error = abs(predicted - actual) / actual
                row[f"{function.value}_us"] = round(predicted, 2)
                row[f"{function.value}_err"] = f"{error:.1%}"
                if function is FitFunction.QUADRATIC_NO_LINEAR:
                    worst_func2 = max(worst_func2, error)
            rows.append(row)

    durations = [measured_by_freq[1800.0][op.name] for op in ops]
    func2_errors = [
        abs(
            models[FitFunction.QUADRATIC_NO_LINEAR].predict_time_us(op.name, f)
            - measured_by_freq[f][op.name]
        )
        / measured_by_freq[f][op.name]
        for op in ops
        for f in VALIDATION_FREQS
    ]
    return ExperimentResult(
        experiment_id="fig16",
        title="Predictions for five representative operators (Fig. 16)",
        paper_reference={
            "operators": "Add, RealDiv, ReduceMean, Conv2D, BNTrainingUpdate",
            "duration_span_us": "20-300",
            "behaviour": "Func. 2 errors mostly low across frequencies",
        },
        measured={
            "duration_span_us": f"{min(durations):.0f}-{max(durations):.0f}",
            "func2_mean_error": float(np.mean(func2_errors)),
            "func2_worst_error": worst_func2,
        },
        rows=rows,
    )
