"""Fig. 15 / Sect. 7.2 — performance-model error CDFs for the three fits.

The paper profiles seven models (ResNet50, ViT-Base, BERT, DeiT-Small,
AlexNet, ShuffleNetV2Plus, VGG19) at six frequency points, fits each
operator with Func. 1/2/3, and validates on the held-out frequencies:
Func. 2 (the deployed closed-form fit) matches Func. 1's accuracy while
Func. 3's bounded exponential lags behind.  Headline numbers: Func. 2
averages 1.96% error, >90% of predictions within 5%, >98% within 10%.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.rng import RngFactory
from repro.experiments.base import ExperimentResult, downsample
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    default_npu_spec,
)
from repro.npu.profiler import ProfileReport
from repro.perf import (
    FitFunction,
    build_performance_model,
    validate_performance_model,
)
from repro.workloads import PERF_VALIDATION_WORKLOADS, generate

#: Frequencies profiled (six points, as in Sect. 7.2).
PROFILE_FREQS = (1000.0, 1200.0, 1300.0, 1500.0, 1600.0, 1800.0)
#: Func. 3's bounded curve_fit is orders of magnitude slower, so it runs on
#: a subsample of operators per workload (documented coverage cap).
FUNC3_OPERATOR_CAP = 120


def _subsample(report: ProfileReport, names: set[str]) -> ProfileReport:
    return replace(
        report,
        operators=tuple(op for op in report.operators if op.name in names),
    )


def run(
    scale: float = 0.3,
    seed: int = 0,
    workloads: tuple[str, ...] = PERF_VALIDATION_WORKLOADS,
    include_func3: bool = True,
) -> ExperimentResult:
    """Regenerate the Fig. 15 error CDFs."""
    spec = default_npu_spec()
    device = NpuDevice(spec)
    profiler = CannStyleProfiler(spec, RngFactory(seed).generator("fig15"))
    errors: dict[FitFunction, list[float]] = {fn: [] for fn in FitFunction}
    functions = [FitFunction.QUADRATIC_NO_LINEAR, FitFunction.QUADRATIC]
    if include_func3:
        functions.append(FitFunction.EXPONENTIAL)
    operators_seen = 0
    total_ops = 0
    short_ops = 0
    short_time = 0.0
    total_time = 0.0
    for name in workloads:
        trace = generate(name, scale=scale)
        reports = [
            profiler.profile(
                device.run(
                    trace, FrequencyTimeline.constant(freq),
                    initial_celsius=60.0,
                )
            )
            for freq in PROFILE_FREQS
        ]
        operators_seen += len(reports[0].significant_operators())
        baseline = reports[-1]
        for op in baseline.operators:
            total_ops += 1
            total_time += op.duration_us
            if op.duration_us < 20.0:
                short_ops += 1
                short_time += op.duration_us
        for function in functions:
            if function is FitFunction.EXPONENTIAL:
                sample_names = {
                    op.name
                    for op in reports[0].significant_operators()[
                        :FUNC3_OPERATOR_CAP
                    ]
                }
                used = [_subsample(r, sample_names) for r in reports]
            else:
                used = reports
            model = build_performance_model(used, function=function)
            validation = validate_performance_model(model, used)
            errors[function].extend(r.error for r in validation.records)

    rows = []
    measured: dict[str, object] = {
        "significant_operators": operators_seen,
        # Sect. 7.2's exclusion statistics: most operators are tiny but
        # contribute almost no time (paper: 58.3% of count, 0.9% of time).
        "short_op_count_fraction": short_ops / total_ops,
        "short_op_time_fraction": short_time / total_time,
    }
    cdf_series: dict[str, list[float]] = {}
    for function in functions:
        errs = np.array(errors[function])
        rows.append(
            {
                "function": function.value,
                "data_points": errs.size,
                "mean_error": f"{errs.mean():.2%}",
                "within_5pct": f"{(errs <= 0.05).mean():.1%}",
                "within_10pct": f"{(errs <= 0.10).mean():.1%}",
            }
        )
        measured[f"{function.value}_mean_error"] = float(errs.mean())
        cdf_series[function.value] = downsample(sorted(errs.tolist()), 40)
    measured["cdf_series"] = cdf_series
    return ExperimentResult(
        experiment_id="fig15",
        title="Performance-model error CDF for Func. 1/2/3 (Fig. 15)",
        paper_reference={
            "short_ops": "58.3% of operators, 0.9% of total time",
            "func2_mean_error": 0.0196,
            "func2_within_5pct": ">90%",
            "func2_within_10pct": ">98%",
            "ordering": "func2 ~ func1, both better than func3",
            "data_points": ">30,000 over >5,000 operators",
        },
        measured=measured,
        rows=rows,
        notes=(
            "Func. 3 runs on a per-workload operator subsample "
            f"(cap {FUNC3_OPERATOR_CAP}) because its bounded curve_fit is "
            "orders of magnitude slower — the paper hit the same overflow/"
            "cost issues and also rejected it."
        ),
    )
