"""Table 3 — end-to-end energy optimization results.

The paper's headline table: GPT-3 training optimised at loss targets of
2/4/6/8/10%, plus BERT, ResNet-50 and ResNet-152 at the production 2%
target.  Each row reports baseline vs DVFS iteration time, SoC power and
AICore power.  Expected shapes: measured loss stays under each target,
savings grow with the target with diminishing returns, and AICore
reductions are several times the SoC reductions.
"""

from __future__ import annotations

from repro.core import EnergyOptimizer, OptimizerConfig, sweep_loss_targets
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.workloads import generate

#: The paper's Table 3 (model, target) -> (loss, soc reduction, aicore
#: reduction) for reference columns.
PAPER_ROWS = {
    ("gpt3", 0.02): (0.0159, 0.0556, 0.1527),
    ("gpt3", 0.04): (0.0328, 0.0698, 0.2025),
    ("gpt3", 0.06): (0.0496, 0.0935, 0.2568),
    ("gpt3", 0.08): (0.0717, 0.1065, 0.2977),
    ("gpt3", 0.10): (0.0859, 0.1197, 0.3201),
    ("bert", 0.02): (0.0178, 0.0661, 0.1708),
    ("resnet50", 0.02): (0.018, 0.0344, 0.1105),
    ("resnet152", 0.02): (0.0188, 0.0420, 0.1037),
}

GPT3_TARGETS = (0.02, 0.04, 0.06, 0.08, 0.10)
OTHER_MODELS = ("bert", "resnet50", "resnet152")


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 600,
    population: int = 200,
) -> ExperimentResult:
    """Regenerate Table 3."""
    ga_config = GaConfig(
        population_size=population, iterations=iterations, seed=seed
    )
    config = OptimizerConfig(ga=ga_config, seed=seed)
    optimizer = EnergyOptimizer(config)
    optimizer.calibrate()

    rows = []
    reductions_at_2pct = []
    losses_at_2pct = []
    gpt3_series = []
    plan = [("gpt3", GPT3_TARGETS)] + [
        (name, (0.02,)) for name in OTHER_MODELS
    ]
    for name, targets in plan:
        workload_scale = scale if name == "gpt3" else min(1.0, scale * 5)
        trace = generate(name, scale=workload_scale, seed=seed)
        sweep = sweep_loss_targets(trace, targets, optimizer=optimizer)
        for report in sweep.reports:
            target = report.performance_loss_target
            paper = PAPER_ROWS.get((name, round(target, 2)))
            row = {
                "model": name,
                "loss_target": percent(target),
                "orig_iter_s": round(report.baseline.iteration_seconds, 4),
                "dvfs_iter_s": round(report.under_dvfs.iteration_seconds, 4),
                "perf_loss": percent(report.performance_loss),
                "orig_soc_w": round(report.baseline.soc_watts, 1),
                "dvfs_soc_w": round(report.under_dvfs.soc_watts, 1),
                "soc_reduction": percent(report.soc_power_reduction),
                "orig_aicore_w": round(report.baseline.aicore_watts, 1),
                "dvfs_aicore_w": round(report.under_dvfs.aicore_watts, 1),
                "aicore_reduction": percent(report.aicore_power_reduction),
                "setfreq_count": report.setfreq_count,
                "paper_loss": percent(paper[0]) if paper else "-",
                "paper_aicore_reduction": percent(paper[2]) if paper else "-",
            }
            rows.append(row)
            if name == "gpt3":
                gpt3_series.append(
                    (target, report.aicore_power_reduction,
                     report.soc_power_reduction,
                     report.performance_loss)
                )
            if round(target, 2) == 0.02:
                reductions_at_2pct.append(report.aicore_power_reduction)
                losses_at_2pct.append(report.performance_loss)

    aicore_by_target = [r[1] for r in gpt3_series]
    monotone = all(
        b >= a - 0.01 for a, b in zip(aicore_by_target, aicore_by_target[1:])
    )
    return ExperimentResult(
        experiment_id="table3",
        title="End-to-end energy optimization (Table 3)",
        paper_reference={
            "avg_aicore_reduction_at_2pct": 0.1344,
            "avg_soc_reduction_at_2pct": 0.0495,
            "avg_perf_loss_at_2pct": 0.0176,
            "behaviour": "savings grow with target, diminishing returns; "
            "2% is the production sweet spot",
        },
        measured={
            "avg_aicore_reduction_at_2pct": (
                sum(reductions_at_2pct) / len(reductions_at_2pct)
            ),
            "avg_perf_loss_at_2pct": (
                sum(losses_at_2pct) / len(losses_at_2pct)
            ),
            "gpt3_savings_monotone_in_target": monotone,
            "all_losses_within_target": all(
                float(row["perf_loss"].rstrip("%"))
                <= float(row["loss_target"].rstrip("%")) + 0.3
                for row in rows
            ),
        },
        rows=rows,
        notes=(
            "Absolute reductions are simulator-calibrated; the preserved "
            "shapes are the loss-vs-target compliance, the monotone-"
            "with-diminishing-returns savings, and AICore savings being "
            "several times the SoC savings."
        ),
    )
