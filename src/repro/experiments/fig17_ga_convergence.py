"""Fig. 17 — GA convergence under different performance lower bounds.

The paper tracks the fittest individual's score over 600 iterations for
performance-loss targets of 2-10% on GPT-3: stricter targets converge
faster (at 2% the seeded prior individual is already near-optimal), and
every configuration converges within 500 rounds, each search in ~2.5 s.
"""

from __future__ import annotations

import numpy as np

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig, StrategyScorer, run_search
from repro.experiments.base import ExperimentResult, downsample
from repro.workloads import generate

TARGETS = (0.02, 0.04, 0.06, 0.08, 0.10)


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 600,
    population: int = 200,
) -> ExperimentResult:
    """Regenerate the Fig. 17 convergence trajectories."""
    config = OptimizerConfig(
        ga=GaConfig(population_size=population, iterations=iterations,
                    seed=seed),
        seed=seed,
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=scale, seed=seed)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)

    rows = []
    series: dict[str, list[float]] = {}
    convergence = {}
    for target in TARGETS:
        scorer = StrategyScorer(
            trace=trace,
            stages=candidates.stages,
            perf_model=models.performance,
            power_table=models.power,
            freqs_mhz=config.npu.frequencies.points,
            performance_loss_target=target,
        )
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points,
            config.ga,
        )
        history = np.array(result.history)
        # Plateau detection: the generation at which 95% of the total score
        # improvement has been realised (elitism keeps refining the tail of
        # the trajectory with negligible gains long after the knee).
        threshold = history[0] + 0.95 * (history[-1] - history[0])
        converged_at = int(np.argmax(history >= threshold))
        convergence[target] = converged_at
        label = f"{target:.0%}"
        series[label] = downsample(history.tolist(), 40)
        rows.append(
            {
                "loss_target": label,
                "initial_best": round(float(history[0]), 4),
                "final_best": round(float(history[-1]), 4),
                "converged_at_iteration": converged_at,
                "wall_seconds": round(result.wall_seconds, 2),
            }
        )

    return ExperimentResult(
        experiment_id="fig17",
        title="GA convergence under different loss bounds (Fig. 17)",
        paper_reference={
            "behaviour": "stricter targets converge faster; all within "
            "500 rounds; each search within 2.5 s",
            "at_2pct": "the seeded prior individual is already optimal",
        },
        measured={
            "all_within_500": all(v <= 500 for v in convergence.values()),
            "latest_convergence": max(convergence.values()),
            "searches_under_2p5_seconds": all(
                row["wall_seconds"] <= 2.5 for row in rows
            ),
            "score_series": series,
        },
        rows=rows,
    )
