"""Extension — graceful degradation of the guarded runtime under faults.

The paper's runtime assumes a perfect control plane; this study injects
the :mod:`repro.npu.faults` fault model (dropped/duplicated/slow/stuck
SetFreq, telemetry dropouts and spikes, profiler record loss, ambient
steps) at increasing rates and measures what the guarded executor
(:mod:`repro.dvfs.guard`) delivers.

The safety envelope under test:

* **Graceful degradation** — mean power savings decrease (within a small
  trial-noise slack) as the fault rate rises, instead of collapsing or
  oscillating: the guard converts unrecoverable runs into baseline runs
  (zero savings, zero loss), never into pathological ones.  This is a
  property of the sweep, not an invariant: at moderate rates a delayed
  or retried recovery switch can *extend* LFC residency, transiently
  deepening savings (and loss) within the envelope, so individual seeds
  may report ``degrades_monotonically`` False while the loss guarantee
  below still holds.
* **Loss target held** — at every fault rate and every seed, the
  measured performance loss stays within the strategy's target plus the
  guard margin.  This is the hard guarantee (see
  ``tests/test_guard_properties.py``).

The DVFS strategy is generated once on a healthy pipeline (faults attack
the runtime, not the offline search), then re-executed under seeded
injectors.  Trials use *common random numbers* across rates: trial ``t``
draws from the same named stream at every fault rate, so each fault
decision compares the same uniform draw against a growing threshold and
the injected fault sets are (approximately) nested — the comparison
across rates measures the rate effect, not sampling luck.  The whole
sweep replays bit-identically from the root seed.
"""

from __future__ import annotations

import statistics

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.dvfs.guard import GuardedDvfsExecutor
from repro.experiments.base import ExperimentResult, percent
from repro.npu.faults import FaultConfig, FaultInjector
from repro.workloads import generate

#: Fault rates swept (per-decision probabilities, uniform across classes).
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Mean-savings increase tolerated between adjacent rates before the
#: degradation no longer counts as monotone (trial noise allowance).
MONOTONE_SLACK = 0.01


def run(
    scale: float = 0.05,
    seed: int = 0,
    iterations: int = 120,
    population: int = 60,
    rates: tuple[float, ...] = DEFAULT_RATES,
    trials: int = 3,
) -> ExperimentResult:
    """Sweep fault rates against the guarded runtime's safety envelope."""
    config = OptimizerConfig(
        performance_loss_target=0.02,
        ga=GaConfig(
            population_size=population,
            iterations=iterations,
            seed=seed,
            patience=60,
        ),
        seed=seed,
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("bert", scale=scale, seed=seed)
    healthy = optimizer.optimize(trace)
    strategy = healthy.strategy
    loss_limit = (
        config.performance_loss_target + config.guard.loss_margin
    )

    rows = []
    mean_savings: list[float] = []
    max_losses: list[float] = []
    for rate in rates:
        savings: list[float] = []
        losses: list[float] = []
        incidents = 0
        reverts = 0
        for trial in range(trials):
            # Common random numbers: the stream depends on the trial
            # only, so rates reuse the same draws (nested fault sets).
            injector = FaultInjector.from_seed(
                FaultConfig.uniform(rate),
                seed,
                stream=f"faults-trial{trial}",
            )
            guarded = GuardedDvfsExecutor(
                optimizer.executor, config=config.guard, injector=injector
            )
            outcome = guarded.execute_with_baseline(trace, strategy)
            savings.append(outcome.aicore_power_reduction)
            losses.append(outcome.performance_loss)
            incidents += len(outcome.incidents)
            reverts += int(outcome.fell_back)
        mean_savings.append(statistics.mean(savings))
        max_losses.append(max(losses))
        rows.append(
            {
                "fault_rate": rate,
                "mean_aicore_reduction": percent(statistics.mean(savings)),
                "max_perf_loss": percent(max(losses)),
                "incidents": incidents,
                "reverted_trials": f"{reverts}/{trials}",
            }
        )

    degrades_monotonically = all(
        later <= earlier + MONOTONE_SLACK
        for earlier, later in zip(mean_savings, mean_savings[1:])
    )
    return ExperimentResult(
        experiment_id="ext_fault_tolerance",
        title="Guarded runtime under injected control-plane faults",
        paper_reference={
            "context": "the paper assumes a perfect SetFreq/telemetry "
            "plane; this study states and enforces the safety envelope "
            "when that assumption breaks",
        },
        measured={
            "healthy_aicore_reduction": healthy.aicore_power_reduction,
            "rates": list(rates),
            "mean_savings_by_rate": mean_savings,
            "max_loss_by_rate": max_losses,
            "degrades_monotonically": degrades_monotonically,
            "loss_target_never_violated": all(
                loss <= loss_limit for loss in max_losses
            ),
            "loss_limit": loss_limit,
        },
        rows=rows,
        notes="Savings fall toward zero as faults intensify (reverted "
        "trials measure the baseline), while the measured loss never "
        "exceeds target + guard margin at any injected rate.",
    )
