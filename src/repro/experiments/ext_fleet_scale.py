"""Extension — vectorized fleet scaling with hierarchical collectives.

The ``ext_cluster`` study works the barrier-slack asymmetry on a looped
N<=16 cluster; the paper's deployment story (Sect. 8.1) is fleets of
thousands of accelerators, where a Python loop per device per step is
the bottleneck, not the model.  This study exercises :mod:`repro.fleet`
— the same physics with every device's compiled affine solution stacked
into arrays — and measures what the vectorization buys and what it must
not change:

* **equivalence** — at reference size the fleet must reproduce the
  looped :class:`~repro.cluster.simulator.SimulatedCluster` to <= 1e-9
  on every per-device observable, with byte-identical reclaimed
  strategies (it lands ~1e-15; durations are bitwise);
* **reclamation at scale** — vectorized slack reclamation on a
  ``devices``-sized fleet: SoC savings at ~zero step-time regression,
  now over thousands of varied boards;
* **hierarchical collectives** — intra-rack ring + inter-rack
  recursive-doubling tree, never slower than the flat ring beyond one
  rack and exactly the ring law inside one;
* **elastic membership** — seeded join/leave/fail churn with
  re-targeted reclamation; replaying the same seed reproduces the
  identical event history and energies;
* **store round-trip** — :func:`repro.cluster.serve.fleet_cached_reclaim`
  reassembles the byte-identical plan from the persistent store;
* **scaling** — warm barrier steps per second at increasing fleet
  sizes (the checked-in ``BENCH_fleet.json`` carries the 10k point).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.cluster.serve import fleet_cached_reclaim
from repro.experiments.base import ExperimentResult, percent
from repro.fleet.churn import ChurnConfig
from repro.fleet.dvfs import (
    auto_retarget,
    plan_strategy_json,
    reclaim_fleet_slack,
)
from repro.fleet.reference import EQUIVALENCE_TOLERANCE, compare_with_cluster
from repro.fleet.simulator import FleetSimulator
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import FleetTopology
from repro.workloads import generate


def _steps_per_second(sim: FleetSimulator, plan, target, steps: int) -> float:
    sim.reset()
    sim.step(plan, target_compute_us=target)  # warm the caches
    start = time.perf_counter()
    sim.run_steps(plan, steps=steps, target_compute_us=target)
    return steps / (time.perf_counter() - start)


def run(
    scale: float = 0.02,
    seed: int = 0,
    devices: int = 512,
    reference_devices: int = 8,
    devices_per_rack: int = 16,
    gradient_mb: float = 64.0,
    steps: int = 3,
    scaling_sizes: tuple[int, ...] = (64, 512, 2048),
    workload: str = "gpt3",
    store_dir: str | None = None,
) -> ExperimentResult:
    """Measure the vectorized fleet against its looped reference."""
    trace = generate(workload, scale=scale, seed=seed)
    topology = FleetTopology(devices_per_rack=devices_per_rack)

    # Phase 1: small-N equivalence against the looped cluster.
    comparison = compare_with_cluster(
        FleetSpec(
            n_devices=reference_devices,
            gradient_bytes=gradient_mb * 2**20,
            seed=seed,
        ),
        trace,
    )

    # Phase 2: reclamation on the full fleet.
    spec = FleetSpec(
        n_devices=devices,
        topology=topology,
        gradient_bytes=gradient_mb * 2**20,
        seed=seed,
    )
    sim = FleetSimulator(spec, trace)
    baseline = sim.run_steps(None, steps=steps)
    sim.reset()
    plan = reclaim_fleet_slack(sim)
    reclaimed = sim.run_steps(
        plan, steps=steps, target_compute_us=plan.target_compute_us
    )
    report = reclaimed[-1].report(baseline[-1])

    # Phase 3: the hierarchical collective against the flat ring.
    collective = sim.collective_cost()
    one_rack = topology.breakdown(
        spec.gradient_bytes, topology.rack_sizes(devices_per_rack)
    )
    single_rack_exact = (
        one_rack.hierarchical_us
        == spec.topology.intra.allreduce_us(
            spec.gradient_bytes, devices_per_rack
        )
    )

    # Phase 4: churn replay identity — same seed, same history.
    churn_spec = FleetSpec(
        n_devices=devices,
        topology=topology,
        gradient_bytes=gradient_mb * 2**20,
        seed=seed,
        churn=ChurnConfig(
            join_rate=1.0, leave_rate=1.0, fail_rate=0.5, max_joins=16
        ),
    )

    def churn_run():
        churned = FleetSimulator(churn_spec, trace)
        churn_plan = reclaim_fleet_slack(churned)
        results = churned.run_steps(
            churn_plan,
            steps=steps,
            target_compute_us=churn_plan.target_compute_us,
            replan=auto_retarget(),
        )
        events = tuple(e for r in results for e in r.events)
        energy = sum(r.fleet_soc_energy_j for r in results)
        return events, energy, results[-1].n_devices

    events_a, energy_a, final_a = churn_run()
    events_b, energy_b, final_b = churn_run()
    churn_identical = (
        events_a == events_b and energy_a == energy_b and final_a == final_b
    )

    # Phase 5: store round-trip at fleet size.
    root = Path(store_dir) if store_dir else Path(tempfile.mkdtemp())
    cleanup = store_dir is None
    try:
        from repro.serve.store import StrategyStore

        store = StrategyStore(root)
        cold = fleet_cached_reclaim(sim, store)
        warm = fleet_cached_reclaim(sim, store)
        store_identical = (
            plan_strategy_json(cold.plan)
            == plan_strategy_json(warm.plan)
            == plan_strategy_json(plan)
            and warm.hit_count == devices
            and not warm.computed
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)

    # Phase 6: scaling curve (warm steps/s per fleet size).
    rows = []
    for size in scaling_sizes:
        size_spec = FleetSpec(
            n_devices=size,
            topology=topology,
            gradient_bytes=gradient_mb * 2**20,
            seed=seed,
        )
        size_sim = FleetSimulator(size_spec, trace)
        size_plan = reclaim_fleet_slack(size_sim)
        rate = _steps_per_second(
            size_sim, size_plan, size_plan.target_compute_us, steps
        )
        cost = size_sim.collective_cost()
        rows.append(
            {
                "devices": size,
                "racks": len(topology.rack_sizes(size)),
                "steps_per_s": round(rate, 1),
                "collective_ms": round(cost.chosen_us / 1000.0, 3),
                "algorithm": cost.algorithm,
                "vs_flat_ring": percent(
                    1.0 - cost.chosen_us / cost.flat_ring_us
                ),
            }
        )

    return ExperimentResult(
        experiment_id="ext_fleet_scale",
        title="Vectorized fleet scaling with hierarchical collectives",
        paper_reference={
            "context": "Sect. 8.1: per-device DVFS amortized over "
            "synchronized fleets; the analytical model makes "
            "thousand-device planning a few array passes, and the "
            "barrier physics must not change when the loop is "
            "vectorized",
        },
        measured={
            "devices": devices,
            "racks": len(topology.rack_sizes(devices)),
            "workload": trace.name,
            "equivalence_devices": comparison.n_devices,
            "equivalence_max_rel_err": comparison.max_rel_err,
            "equivalence_tolerance": EQUIVALENCE_TOLERANCE,
            "equivalence_ok": comparison.ok(),
            "plans_byte_identical": comparison.plans_byte_identical,
            "durations_bitwise": comparison.max_rel_duration == 0.0,
            "soc_energy_savings": report.soc_energy_savings,
            "aicore_energy_savings": report.aicore_energy_savings,
            "step_time_regression": report.step_time_regression,
            "collective_algorithm": collective.algorithm,
            "hierarchical_not_slower": (
                collective.chosen_us <= collective.flat_ring_us
            ),
            "single_rack_exact_ring": single_rack_exact,
            "churn_events": len(events_a),
            "churn_final_devices": final_a,
            "churn_replay_identical": churn_identical,
            "identical_through_store": store_identical,
            "store_warm_hits": warm.hit_count,
            "scaling_max_devices": max(scaling_sizes),
            "scaling_min_steps_per_s": min(r["steps_per_s"] for r in rows),
        },
        rows=rows,
        notes=(
            f"The stacked-array fleet reproduces the looped cluster to "
            f"{comparison.max_rel_err:.1e} (bar {EQUIVALENCE_TOLERANCE:g}) "
            f"with byte-identical reclaimed plans, then scales the same "
            f"physics to {max(scaling_sizes)} devices at "
            f"{rows[-1]['steps_per_s']:.0f} steps/s. Reclamation saves "
            f"{report.soc_energy_savings:.2%} of fleet SoC energy at "
            f"{report.step_time_regression:+.3%} step time; the "
            f"hierarchical collective is never slower than the flat ring "
            f"and churn replays are bit-identical."
        ),
    )
