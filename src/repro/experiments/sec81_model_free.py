"""Sect. 8.1 — model-based versus model-free strategy search.

The paper's argument for building models at all: with the fitted
performance/power models a policy is scored in milliseconds (20,000
strategies within 5 minutes with multiprocessing), while a model-free
search must execute each policy for a full training iteration (~11 s on
GPT-3), evaluating only ~30 candidates in the same time — far too slow for
the GA to converge.

We measure both costs directly: the throughput of the vectorised
model-based scorer, and the *simulated* wall time a model-free search
would spend executing candidates on the device (plus its much smaller
evaluated-strategy budget for equal time).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig, StrategyScorer, run_search
from repro.dvfs.model_free import ModelFreeScorer
from repro.experiments.base import ExperimentResult
from repro.workloads import generate


def run(
    scale: float = 0.05,
    seed: int = 0,
    model_free_budget: int = 24,
) -> ExperimentResult:
    """Compare model-based scoring throughput against real execution."""
    config = OptimizerConfig(
        ga=GaConfig(population_size=100, iterations=200, seed=seed),
        seed=seed,
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=scale, seed=seed)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    freqs = config.npu.frequencies.points

    # Model-based: full GA, wall-clock measured.
    scorer = StrategyScorer(
        trace=trace,
        stages=candidates.stages,
        perf_model=models.performance,
        power_table=models.power,
        freqs_mhz=freqs,
    )
    search = run_search(scorer, candidates.stages, freqs, config.ga)
    model_based_rate = search.evaluations / max(search.wall_seconds, 1e-9)

    # Model-free: execute a budget of random strategies on the device and
    # account the simulated iteration time each one costs.
    free_scorer = ModelFreeScorer(
        device=optimizer.device,
        trace=trace,
        stages=candidates.stages,
        freqs_mhz=freqs,
    )
    rng = np.random.default_rng(seed)
    population = rng.integers(
        0, len(freqs), size=(model_free_budget, free_scorer.stage_count)
    )
    population[0, :] = len(freqs) - 1  # include the baseline
    start = time.perf_counter()
    free_scores = free_scorer.score(population)
    free_wall = time.perf_counter() - start

    iteration_seconds = free_scorer.baseline_time_us / 1e6
    # How many candidates fit in the time the GA's full search needs, if
    # each costs one on-device iteration (the paper's 11 s -> ~30 budget)?
    equal_time_budget = max(
        1, int(search.evaluations / model_based_rate / iteration_seconds)
    )

    rows = [
        {
            "approach": "model-based (vectorised scorer)",
            "strategies": search.evaluations,
            "cost": f"{search.wall_seconds:.2f}s wall",
            "best_score": round(search.best_score, 4),
        },
        {
            "approach": "model-free (execute each policy)",
            "strategies": free_scorer.evaluations,
            "cost": f"{free_scorer.simulated_seconds:.1f}s of device time",
            "best_score": round(float(free_scores.max()), 4),
        },
    ]
    return ExperimentResult(
        experiment_id="sec81",
        title="Model-based vs model-free strategy search (Sect. 8.1)",
        paper_reference={
            "model_based": "20,000 strategies within 5 minutes",
            "model_free": "~30 strategies in the same time "
            "(one ~11 s training round each)",
        },
        measured={
            "model_based_strategies_per_second": model_based_rate,
            "device_seconds_per_model_free_eval": iteration_seconds,
            "model_free_budget_for_equal_time": equal_time_budget,
            "model_based_finds_better": (
                search.best_score >= float(free_scores.max())
            ),
            "speed_ratio": model_based_rate * iteration_seconds,
        },
        rows=rows,
        notes=(
            "The model-free column charges each candidate its simulated "
            "on-device iteration time; at paper scale (11 s iterations) "
            "the same GA would need days.  The best-score comparison uses "
            "the random population the model-free budget affords."
        ),
    )
