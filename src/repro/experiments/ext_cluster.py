"""Extension — cluster slack reclamation on a varied data-parallel fleet.

The paper's pipeline optimises one NPU; its deployment story
(Sect. 8.1) is synchronous data-parallel fleets, where the all-reduce
barrier makes per-device DVFS asymmetric: slowing the critical device
stalls every peer, slowing a non-critical device is free.  This study
quantifies that asymmetry on a simulated fleet of ``devices`` NPUs with
seeded silicon/thermal variation:

* **baseline** — every device at uniform maximum frequency; the step
  completes at the straggler's arrival plus the ring all-reduce, and
  faster devices burn idle power waiting at the barrier;
* **reclaimed** — per-device frequency tables are built (fanned out
  over ``workers`` processes through :mod:`repro.serve.pool`, with the
  serial path asserted byte-identical), non-critical devices are
  downclocked to arrive just-in-time, and the per-device strategies
  round-trip through the persistent strategy store;
* **fleet GA** — the existing genetic algorithm re-targeted at the
  fleet ``energy x step-time`` objective, as a search-based cross-check
  of the deterministic reclamation;
* **degraded** — one device is fault-injected slow (silicon
  degradation via its :mod:`repro.npu.faults` injector log).  The stale
  reclaimed plan now overruns the planned barrier — recorded in the
  cluster's :class:`~repro.dvfs.guard.IncidentLog` — and re-running
  reclamation re-targets the new straggler, reclaiming the (larger)
  slack the degradation created on every healthy device.

Headline metrics: fleet SoC-energy savings at the step-time regression
(must be ~zero), byte-identity across worker counts and repeated runs,
and the degraded phase's incident count and re-targeted straggler.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.cluster.dvfs import (
    build_frequency_tables,
    reclaim_slack,
    search_cluster_frequencies,
)
from repro.cluster.serve import cached_reclaim
from repro.cluster.simulator import SimulatedCluster
from repro.cluster.spec import ClusterSpec
from repro.dvfs.ga import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.serve.store import StrategyStore
from repro.workloads import generate


def run(
    scale: float = 0.02,
    seed: int = 0,
    iterations: int = 60,
    population: int = 40,
    devices: int = 8,
    workers: int = 2,
    gradient_mb: float = 64.0,
    slowdown: float = 1.3,
    workload: str = "gpt3",
    store_dir: str | None = None,
) -> ExperimentResult:
    """Measure slack reclamation on a varied data-parallel fleet."""
    trace = generate(workload, scale=scale, seed=seed)
    spec = ClusterSpec(
        n_devices=devices,
        gradient_bytes=gradient_mb * 2**20,
        seed=seed,
    )
    cluster = SimulatedCluster(spec)
    root = Path(store_dir) if store_dir else Path(tempfile.mkdtemp())
    cleanup = store_dir is None
    try:
        baseline = cluster.run_step(trace)

        # Reclamation, serial vs pooled: the tables are pure functions
        # of (profile, trace), so worker count must not change a byte.
        serial_tables = build_frequency_tables(cluster, trace, workers=0)
        pooled_tables = build_frequency_tables(
            cluster, trace, workers=workers
        )
        plan = reclaim_slack(
            serial_tables, trace.name, allreduce_us=spec.allreduce_us
        )
        pooled_plan = reclaim_slack(
            pooled_tables, trace.name, allreduce_us=spec.allreduce_us
        )
        identical_workers = (
            plan.strategy_json() == pooled_plan.strategy_json()
        )

        # Repeated-run identity on a fresh cluster instance.
        repeat_plan = reclaim_slack(
            build_frequency_tables(
                SimulatedCluster(
                    ClusterSpec(
                        n_devices=devices,
                        gradient_bytes=gradient_mb * 2**20,
                        seed=seed,
                    )
                ),
                trace,
                workers=0,
            ),
            trace.name,
            allreduce_us=spec.allreduce_us,
        )
        identical_repeat = plan.strategy_json() == repeat_plan.strategy_json()

        # Store round-trip: a cold cached_reclaim computes and persists;
        # a warm one reassembles the identical plan from disk alone.
        store = StrategyStore(root)
        cold = cached_reclaim(cluster, trace, store, workers=0)
        warm = cached_reclaim(cluster, trace, store, workers=0)
        identical_store = (
            cold.strategy.strategy_json() == plan.strategy_json()
            and warm.strategy.strategy_json() == plan.strategy_json()
        )

        reclaimed = cluster.run_step(
            trace, plan.strategies, target_compute_us=plan.target_compute_us
        )
        reclaim_report = reclaimed.report(baseline)

        # Search-based cross-check: the fleet GA objective.
        ga_plan, ga_search, ga_predicted = search_cluster_frequencies(
            serial_tables,
            trace.name,
            allreduce_us=spec.allreduce_us,
            config=GaConfig(
                population_size=population,
                iterations=iterations,
                seed=seed,
                patience=30,
            ),
        )
        ga_step = cluster.run_step(
            trace,
            ga_plan.strategies,
            target_compute_us=ga_plan.target_compute_us,
        )
        ga_report = ga_step.report(baseline)

        # Degraded phase: one non-straggler device fault-injected slow.
        victim = (baseline.straggler_id + 1) % devices
        degraded_cluster = SimulatedCluster(
            spec.with_degraded_device(
                victim, slowdown, reason="injected silicon degradation"
            )
        )
        stale = degraded_cluster.run_step(
            trace, plan.strategies, target_compute_us=plan.target_compute_us
        )
        overruns = [
            incident
            for incident in stale.incidents
            if incident.kind == "barrier_overrun"
        ]
        degraded_baseline = degraded_cluster.run_step(trace)
        new_plan = reclaim_slack(
            build_frequency_tables(degraded_cluster, trace, workers=0),
            trace.name,
            allreduce_us=spec.allreduce_us,
        )
        retargeted = degraded_cluster.run_step(
            trace,
            new_plan.strategies,
            target_compute_us=new_plan.target_compute_us,
        )
        retarget_report = retargeted.report(degraded_baseline)
        victim_events = degraded_cluster.devices[victim].injector.events

        def phase_row(phase: str, report) -> dict:
            return {
                "phase": phase,
                "step_ms": round(report.step_us / 1000.0, 3),
                "regression": percent(report.step_time_regression),
                "soc_savings": percent(report.soc_energy_savings),
                "aicore_savings": percent(report.aicore_energy_savings),
                "straggler": report.straggler_id,
            }

        rows = [
            phase_row("reclaimed", reclaim_report),
            phase_row("fleet_ga", ga_report),
            phase_row("retargeted_degraded", retarget_report),
        ]
        return ExperimentResult(
            experiment_id="ext_cluster",
            title=(
                "Slack-reclaiming cluster DVFS on a varied "
                "data-parallel fleet"
            ),
            paper_reference={
                "context": "Sect. 8.1: the paper deploys per-device DVFS "
                "in synchronized data-parallel fleets; at the all-reduce "
                "barrier, downclocking non-critical devices to arrive "
                "just-in-time converts idle waiting into energy savings "
                "at zero step-time cost",
            },
            measured={
                "devices": devices,
                "workload": trace.name,
                "allreduce_ms": spec.allreduce_us / 1000.0,
                "baseline_step_ms": baseline.step_us / 1000.0,
                "soc_energy_savings": reclaim_report.soc_energy_savings,
                "aicore_energy_savings": (
                    reclaim_report.aicore_energy_savings
                ),
                "step_time_regression": reclaim_report.step_time_regression,
                "ga_soc_energy_savings": ga_report.soc_energy_savings,
                "ga_step_time_regression": ga_report.step_time_regression,
                "ga_feasible": ga_predicted.feasible,
                "ga_generations": ga_search.generations,
                "identical_across_workers": identical_workers,
                "identical_across_runs": identical_repeat,
                "identical_through_store": identical_store,
                "store_cold_hits": cold.hit_count,
                "store_warm_hits": warm.hit_count,
                "degraded_device": victim,
                "barrier_overruns": len(overruns),
                "overrun_names_victim": any(
                    f"device {victim} " in incident.detail
                    for incident in overruns
                ),
                "victim_degradation_logged": any(
                    event.kind == "degraded" for event in victim_events
                ),
                "retargeted_straggler": new_plan.straggler_id,
                "retargeted_soc_energy_savings": (
                    retarget_report.soc_energy_savings
                ),
                "retargeted_step_time_regression": (
                    retarget_report.step_time_regression
                ),
            },
            rows=rows,
            notes=(
                f"Reclamation downclocks non-critical devices to "
                f"just-in-time arrival: fleet SoC energy "
                f"-{reclaim_report.soc_energy_savings:.2%} at "
                f"{reclaim_report.step_time_regression:+.3%} step time. "
                f"After device {victim} degrades {slowdown:.1f}x, the "
                f"stale plan logs {len(overruns)} barrier overrun(s) and "
                f"re-reclamation targets the new straggler, saving "
                f"{retarget_report.soc_energy_savings:.2%} of the "
                f"degraded fleet's energy."
            ),
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
