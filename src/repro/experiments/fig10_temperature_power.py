"""Fig. 10 — AICore temperature versus SoC power.

The paper runs different operators under steady load and observes that
chip temperature correlates linearly with SoC power (each operator tracing
one line); the common slope is the ``k`` of Eq. (15).  We sweep four
single-operator loads across frequencies, measure equilibrium temperature
and SoC power, and fit a line per load.
"""

from __future__ import annotations

from repro.analysis.linear import fit_line
from repro.analysis.rng import RngFactory
from repro.experiments.base import ExperimentResult
from repro.npu import FrequencyTimeline, NpuDevice, PowerTelemetry, default_npu_spec
from repro.workloads.generators import micro


def _loads(scale: float):
    repeats = max(5, int(40 * scale))
    return {
        "MatMul": micro.matmul_loop(repeats=repeats),
        "Gelu": micro.gelu_loop(repeats=repeats),
        "Softmax": micro.softmax_loop(repeats=repeats),
        "Tanh": micro.tanh_loop(repeats=repeats),
    }


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 10 temperature-vs-power lines."""
    spec = default_npu_spec()
    device = NpuDevice(spec)
    telemetry = PowerTelemetry(spec, RngFactory(seed).generator("fig10"))
    freqs = (1000.0, 1200.0, 1400.0, 1600.0, 1800.0)
    rows = []
    slopes = []
    for name, load in _loads(scale).items():
        points = []
        for freq in freqs:
            result = device.run_stable(load, FrequencyTimeline.constant(freq))
            # Average many short lpmi readings, as a real measurement
            # campaign would; a single reading's sensor noise would bias
            # the slope (errors-in-variables attenuation).
            samples = telemetry.sample_chunks(
                result.chunks,
                interval_us=max(result.duration_us / 200.0, 1.0),
            )
            soc = sum(sample.soc_watts for sample in samples) / len(samples)
            celsius = sum(sample.celsius for sample in samples) / len(samples)
            points.append((soc, celsius))
        fit = fit_line([p for p, _ in points], [t for _, t in points])
        slopes.append(fit.slope)
        rows.append(
            {
                "operator": name,
                "soc_watts_range": f"{points[0][0]:.0f}-{points[-1][0]:.0f}",
                "celsius_range": f"{points[0][1]:.1f}-{points[-1][1]:.1f}",
                "k_celsius_per_watt": round(fit.slope, 4),
                "r_squared": round(fit.r_squared, 4),
            }
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="AICore temperature vs SoC power (Fig. 10)",
        paper_reference={
            "behaviour": "linear T-P relation per operator; common slope k",
            "temperature_range_c": "40-85 over 200-400 W",
        },
        measured={
            "mean_k": sum(slopes) / len(slopes),
            "k_spread": max(slopes) - min(slopes),
            "ground_truth_k": spec.thermal.celsius_per_watt,
            "all_linear": all(row["r_squared"] > 0.95 for row in rows),
        },
        rows=rows,
    )
