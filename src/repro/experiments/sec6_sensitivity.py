"""Sect. 6 intro — operator sensitivity trade-offs.

The paper motivates the whole strategy with two example trades: a
compute-bound MatMul sacrifices 6.9% performance for a 7.9% power gain,
while a memory-bound Gelu trades ~2% performance for a >=5% power gain.
This experiment fits the models on a GPT-3 trace and reports the trade
curves of a large MatMul and a Gelu, plus the best-exchange ranking —
memory-bound operator families should dominate the top of the list.
"""

from __future__ import annotations

from collections import Counter

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.dvfs.sensitivity import operator_trade_curve, rank_by_exchange_rate
from repro.experiments.base import ExperimentResult, percent
from repro.workloads import generate


def _find_operator(perf_model, op_type: str, prefer_substring: str) -> str:
    candidates = [
        name
        for name, model in perf_model.operators.items()
        if model.op_type == op_type
    ]
    preferred = [n for n in candidates if prefer_substring in n]
    return (preferred or candidates)[0]


def run(scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    """Reproduce the Sect. 6 per-operator trade examples."""
    config = OptimizerConfig(
        ga=GaConfig(population_size=40, iterations=40, seed=seed), seed=seed
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=scale, seed=seed)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    freqs = config.npu.frequencies.points

    matmul_name = _find_operator(models.performance, "MatMul", "ffn1")
    gelu_name = _find_operator(models.performance, "Gelu", ".gelu")
    rows = []
    curves = {}
    for label, name in (("MatMul", matmul_name), ("Gelu", gelu_name)):
        curve = operator_trade_curve(
            name, models.performance, models.power, freqs
        )
        curves[label] = curve
        for point in curve.points:
            if point.freq_mhz in (1000.0, 1300.0, 1600.0, 1800.0):
                rows.append(
                    {
                        "operator": label,
                        "freq_mhz": point.freq_mhz,
                        "perf_loss": percent(max(0.0, point.performance_loss)),
                        "power_gain": percent(point.power_gain),
                    }
                )

    # Exchange-rate ranking: memory-bound families should lead.
    ranking = rank_by_exchange_rate(
        models.performance, models.power, freqs, max_loss=0.05
    )
    top_types = Counter(
        models.performance.operators[name].op_type
        for name, _ in ranking[:50]
    )
    compute_bound_types = {"MatMul", "Conv2D"}
    memory_led = (
        sum(top_types.get(op_type, 0) for op_type in compute_bound_types)
        <= 0.1 * sum(top_types.values())
    )

    matmul_1600 = curves["MatMul"].at(1600.0)
    gelu_1600 = curves["Gelu"].at(1600.0)
    return ExperimentResult(
        experiment_id="sec6",
        title="Operator frequency-sensitivity trade-offs (Sect. 6)",
        paper_reference={
            "MatMul": "6.9% performance for 7.9% power gain",
            "Gelu": "~2% performance for >=5% power gain",
        },
        measured={
            "matmul_at_1600": (
                f"{percent(matmul_1600.performance_loss)} perf for "
                f"{percent(matmul_1600.power_gain)} power"
            ),
            "gelu_at_1600": (
                f"{percent(max(0.0, gelu_1600.performance_loss))} perf for "
                f"{percent(gelu_1600.power_gain)} power"
            ),
            "gelu_exchange_beats_matmul": (
                gelu_1600.exchange_rate > matmul_1600.exchange_rate
            ),
            "memory_ops_lead_ranking": memory_led,
        },
        rows=rows,
    )
