"""Fig. 9 — the voltage-frequency relationship of the NPU.

The paper measures that below 1300 MHz the supply voltage is constant, and
above it rises linearly with frequency.  This experiment regenerates the
curve from the simulated firmware's V-f table and verifies both properties.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.npu import default_npu_spec


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 9 voltage-frequency table."""
    del scale, seed  # deterministic, size-free experiment
    spec = default_npu_spec()
    table = spec.voltage.table(spec.frequencies.points)
    rows = [
        {"freq_mhz": freq, "volts": round(volts, 4)} for freq, volts in table
    ]
    knee = spec.voltage.knee_mhz
    below = [v for f, v in table if f <= knee]
    above = [(f, v) for f, v in table if f >= knee]
    flat_below = max(below) - min(below) < 1e-9
    slopes = [
        (v2 - v1) / (f2 - f1)
        for (f1, v1), (f2, v2) in zip(above, above[1:])
    ]
    linear_above = max(slopes) - min(slopes) < 1e-9 if slopes else True
    return ExperimentResult(
        experiment_id="fig09",
        title="Voltage-frequency relationship (Fig. 9)",
        paper_reference={
            "flat_below_mhz": 1300,
            "behaviour": "constant voltage below the knee, linear above",
        },
        measured={
            "knee_mhz": knee,
            "flat_below_knee": flat_below,
            "linear_above_knee": linear_above,
            "volts_min": min(v for _, v in table),
            "volts_max": max(v for _, v in table),
        },
        rows=rows,
    )
