"""Extension — fleet-scale strategy serving with a persistent store.

The paper's pipeline is offline and single-workload: one trace in, one
GA run, one strategy out.  Sect. 8.1 argues the cost of the model-based
approach is justified because it *amortizes* — long-lived production
workloads repeat the same iteration, so one search serves many runs.
This study quantifies that argument at fleet scale with
:mod:`repro.serve`: a stream of requests from simulated devices, most of
which repeat workloads the fleet has already submitted.

Setup: ``distinct`` workload instances are drawn from a mixed model pool
(GPT-3 / BERT / ResNet-50 / Llama2 inference) and expanded into a
``requests``-long stream where a fraction ``repeat_ratio`` of requests
re-submit an already-seen workload (uniformly, seeded).  The stream is
served three ways:

* **naive** — the paper's cost model: every request runs the full
  profile → fit → GA pipeline, no reuse (same fingerprint-derived seeds
  as the service, so strategies are comparable byte-for-byte);
* **cold service** — a fresh :class:`~repro.serve.service.StrategyService`
  over an empty store: one GA run per distinct fingerprint, every repeat
  served from cache or coalesced within a batch;
* **warm service** — a *new* service process (fresh instance, fresh LRU)
  over the store the cold run persisted: zero GA runs, every request a
  store hit — the restart-survival property.

Headline metrics: the naive/served speedup across the fleet session
(cold + warm, i.e. the amortization the store buys across process
restarts), byte-identity of every served strategy against the naive
baseline, and the warm run's hit rate and GA-run count.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis.rng import RngFactory
from repro.core import OptimizerConfig
from repro.dvfs import GaConfig
from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult, percent
from repro.serve.fingerprint import request_fingerprint
from repro.serve.pool import optimize_job
from repro.serve.service import StrategyService
from repro.serve.store import StrategyStore
from repro.workloads import generate
from repro.workloads.trace import Trace

#: The model mix a fleet submits (training + inference serving).
FLEET_MODELS = ("gpt3", "bert", "resnet50", "llama2_inference")


def build_request_stream(
    requests: int,
    repeat_ratio: float,
    scale: float,
    seed: int,
) -> tuple[list[Trace], int]:
    """A seeded request stream with a controlled repeat ratio.

    The first ``distinct = max(1, round(requests * (1 - repeat_ratio)))``
    requests introduce distinct workload instances (cycling the model
    mix with varied generator seeds); the remaining requests re-submit
    previously seen instances uniformly at random.  Returns the stream
    and the distinct-instance count.
    """
    if requests < 1:
        raise ExperimentError(f"requests must be >= 1: {requests}")
    if not 0.0 <= repeat_ratio < 1.0:
        raise ExperimentError(
            f"repeat_ratio must be in [0, 1): {repeat_ratio}"
        )
    distinct = max(1, round(requests * (1.0 - repeat_ratio)))
    pool = [
        generate(
            FLEET_MODELS[i % len(FLEET_MODELS)],
            scale=scale,
            seed=seed + i,
        )
        for i in range(distinct)
    ]
    rng = RngFactory(seed).generator("fleet-stream")
    stream: list[Trace] = list(pool)
    for _ in range(requests - distinct):
        stream.append(pool[int(rng.integers(0, len(pool)))])
    order = rng.permutation(len(stream))
    return [stream[i] for i in order], distinct


def run(
    scale: float = 0.03,
    seed: int = 0,
    iterations: int = 60,
    population: int = 40,
    requests: int = 60,
    repeat_ratio: float = 0.9,
    workers: int = 2,
    batch_size: int = 10,
    store_dir: str | None = None,
) -> ExperimentResult:
    """Measure the amortization win of store-backed strategy serving."""
    config = OptimizerConfig(
        performance_loss_target=0.02,
        ga=GaConfig(
            population_size=population,
            iterations=iterations,
            seed=seed,
            patience=30,
        ),
        seed=seed,
    )
    stream, distinct = build_request_stream(
        requests, repeat_ratio, scale, seed
    )
    root = Path(store_dir) if store_dir else Path(tempfile.mkdtemp())
    cleanup = store_dir is None
    try:
        # Naive baseline: every request pays the full pipeline.  Same
        # per-fingerprint seeds as the service, so strategies must match
        # byte-for-byte.
        naive_started = time.perf_counter()
        naive_json: list[str] = []
        for trace in stream:
            fingerprint = request_fingerprint(trace, config)
            naive_json.append(
                optimize_job(fingerprint, trace, config).strategy_json
            )
        naive_seconds = time.perf_counter() - naive_started

        # Cold service: empty store, batched request arrival.
        cold_started = time.perf_counter()
        with StrategyService(
            config=config, store=StrategyStore(root), workers=workers
        ) as cold:
            cold_results = []
            for i in range(0, len(stream), batch_size):
                cold_results.extend(
                    cold.serve_batch(stream[i : i + batch_size])
                )
            cold_stats = cold.stats
        cold_seconds = time.perf_counter() - cold_started

        # Warm service: a fresh process restarts over the same store.
        warm_started = time.perf_counter()
        with StrategyService(
            config=config, store=StrategyStore(root), workers=workers
        ) as warm:
            warm_results = [warm.request(trace) for trace in stream]
            warm_stats = warm.stats
        warm_seconds = time.perf_counter() - warm_started

        identical_cold = all(
            served.strategy.to_json() == expected
            for served, expected in zip(cold_results, naive_json)
        )
        identical_warm = all(
            served.strategy.to_json() == expected
            for served, expected in zip(warm_results, naive_json)
        )
        served_seconds = cold_seconds + warm_seconds
        speedup = (2.0 * naive_seconds) / max(served_seconds, 1e-9)
        cold_speedup = naive_seconds / max(cold_seconds, 1e-9)

        rows = [
            {
                "phase": "naive",
                "wall_s": round(naive_seconds, 3),
                "ga_runs": len(stream),
                "hit_rate": percent(0.0),
                "identical": "-",
            },
            {
                "phase": "cold_service",
                "wall_s": round(cold_seconds, 3),
                "ga_runs": cold_stats.ga_runs,
                "hit_rate": percent(cold_stats.hit_rate),
                "identical": identical_cold,
            },
            {
                "phase": "warm_service",
                "wall_s": round(warm_seconds, 3),
                "ga_runs": warm_stats.ga_runs,
                "hit_rate": percent(warm_stats.hit_rate),
                "identical": identical_warm,
            },
        ]
        return ExperimentResult(
            experiment_id="ext_fleet",
            title="Fleet-scale strategy serving vs per-request optimization",
            paper_reference={
                "context": "Sect. 8.1: the model-based approach amortizes "
                "its cost across repeated workloads; this study serves a "
                f"{repeat_ratio:.0%}-repeat fleet stream through the "
                "strategy store instead of re-optimizing per request",
            },
            measured={
                "requests": len(stream),
                "distinct_workloads": distinct,
                "repeat_ratio": repeat_ratio,
                "workers": workers,
                "naive_seconds": naive_seconds,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "speedup": speedup,
                "cold_speedup": cold_speedup,
                "cold_ga_runs": cold_stats.ga_runs,
                "warm_ga_runs": warm_stats.ga_runs,
                "cold_hit_rate": cold_stats.hit_rate,
                "warm_hit_rate": warm_stats.hit_rate,
                "warm_disk_hits": warm_stats.disk_hits,
                "identical_to_serial": identical_cold and identical_warm,
            },
            rows=rows,
            notes=(
                f"One GA run per distinct workload ({distinct} of "
                f"{len(stream)} requests) serves the whole fleet session; "
                "the warm restart serves everything from the persisted "
                "store with zero GA runs, byte-identical to per-request "
                "optimization."
            ),
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
