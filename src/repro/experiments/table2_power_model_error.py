"""Table 2 / Sect. 7.3 — power-model validation.

The paper builds per-load power models from 1000/1800 MHz data for GPT-3,
BERT, VGG19, ResNet-50 and ViT training plus the Softmax and Tanh
operators, then predicts the remaining frequencies: 22.2% of predictions
land within 1%, 64.8% within 5%, >80% within 10%, average error 4.62%.
Setting gamma = 0 (no temperature term) degrades the average to 4.97%.
"""

from __future__ import annotations

from repro.analysis.rng import RngFactory
from repro.experiments.base import ExperimentResult, percent
from repro.npu import NpuDevice, PowerTelemetry, default_npu_spec
from repro.power import run_offline_calibration, validate_power_model
from repro.workloads import POWER_VALIDATION_WORKLOADS, generate
from repro.workloads.generators import micro

VALIDATION_FREQS = (1100.0, 1200.0, 1400.0, 1500.0, 1700.0)


def run(
    scale: float = 0.15,
    seed: int = 0,
    workloads: tuple[str, ...] = POWER_VALIDATION_WORKLOADS,
) -> ExperimentResult:
    """Regenerate Table 2 (and the gamma = 0 ablation)."""
    spec = default_npu_spec()
    device = NpuDevice(spec)
    telemetry = PowerTelemetry(spec, RngFactory(seed).generator("table2"))
    constants = run_offline_calibration(
        device,
        telemetry,
        micro.mixed_calibration_load(repeats=15),
        k_loads=[micro.matmul_loop(repeats=30), micro.gelu_loop(repeats=30)],
    )
    loads = [generate(name, scale=scale, seed=seed) for name in workloads]
    loads.append(micro.softmax_loop(repeats=max(10, int(100 * scale))))
    loads.append(micro.tanh_loop(repeats=max(10, int(100 * scale))))

    validation = validate_power_model(
        loads, device, telemetry, constants,
        validation_freqs_mhz=VALIDATION_FREQS,
    )
    ablation = validate_power_model(
        loads, device, telemetry, constants.without_thermal_term(),
        validation_freqs_mhz=VALIDATION_FREQS,
    )

    buckets = validation.bucket_table()
    rows = [
        {"error_range": label, "fraction": percent(fraction)}
        for label, fraction in buckets.items()
    ]
    rows.append({"error_range": "Avg", "fraction": percent(validation.mean_error)})

    return ExperimentResult(
        experiment_id="table2",
        title="Power-model prediction error (Table 2)",
        paper_reference={
            "buckets": {
                "(0, 1%]": 0.222,
                "(1%, 5%]": 0.426,
                "(5%, 10%]": 0.222,  # printed '42.2%' is a typo; rows sum ~1
                "(10%, +inf)": 0.194,
            },
            "mean_error": 0.0462,
            "gamma0_mean_error": 0.0497,
        },
        measured={
            "mean_error": validation.mean_error,
            "gamma0_mean_error": ablation.mean_error,
            "thermal_term_helps": ablation.mean_error >= validation.mean_error,
            "predictions": len(validation.records),
        },
        rows=rows,
        notes=(
            "Models are fitted on the 1000/1800 MHz reference points, as in "
            "Sect. 7.3, and validated at "
            f"{', '.join(str(int(f)) for f in VALIDATION_FREQS)} MHz."
        ),
    )
