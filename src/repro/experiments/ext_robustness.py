"""Extension — seed robustness of the end-to-end result.

A reproduction should demonstrate that its headline numbers are not a
lucky seed.  This study reruns the GPT-3 2%-target pipeline across several
root seeds — which reshuffle the measurement noise, the GA's randomness,
and the workload's shape jitter together — and reports the spread of the
measured loss and savings.
"""

from __future__ import annotations

import statistics

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.workloads import generate


def run(
    scale: float = 0.05,
    seed: int = 0,
    iterations: int = 300,
    population: int = 120,
    seeds: int = 5,
) -> ExperimentResult:
    """Rerun the 2%-target GPT-3 optimization across root seeds."""
    rows = []
    losses = []
    reductions = []
    for offset in range(seeds):
        root = seed + offset
        config = OptimizerConfig(
            performance_loss_target=0.02,
            ga=GaConfig(population_size=population, iterations=iterations,
                        seed=root, patience=60),
            seed=root,
        )
        report = EnergyOptimizer(config).optimize(
            generate("gpt3", scale=scale, seed=root)
        )
        losses.append(report.performance_loss)
        reductions.append(report.aicore_power_reduction)
        rows.append(
            {
                "seed": root,
                "perf_loss": percent(report.performance_loss),
                "aicore_reduction": percent(report.aicore_power_reduction),
                "soc_reduction": percent(report.soc_power_reduction),
                "setfreq": report.setfreq_count,
            }
        )
    loss_std = statistics.pstdev(losses)
    reduction_std = statistics.pstdev(reductions)
    return ExperimentResult(
        experiment_id="ext_robustness",
        title="Seed robustness of the end-to-end optimization",
        paper_reference={
            "context": "the paper reports single production runs; this "
            "study quantifies run-to-run spread in the reproduction",
        },
        measured={
            "mean_loss": statistics.mean(losses),
            "loss_std": loss_std,
            "mean_aicore_reduction": statistics.mean(reductions),
            "aicore_reduction_std": reduction_std,
            "all_losses_within_target": all(
                loss <= 0.02 + 0.005 for loss in losses
            ),
            "spread_is_small": reduction_std
            < 0.3 * statistics.mean(reductions),
        },
        rows=rows,
    )
