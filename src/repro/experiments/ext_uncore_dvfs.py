"""Extension — the uncore-DVFS potential study of Sect. 8.2.

The paper notes that only the AICore supports frequency tuning while the
uncore (L2/HBM/buses) averages ~80% of the SoC's power, limiting overall
savings; uncore DVFS is named as future work.  This experiment models the
chip that could tune its uncore clock: sweeping a static uncore frequency
scale shows how much SoC power is on the table and what it costs —
training workloads pay with slower memory-bound phases, while host-bound
inference absorbs the cut in idle time.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, percent
from repro.npu import NpuDevice, default_npu_spec
from repro.workloads import generate

UNCORE_SCALES = (1.0, 0.9, 0.8, 0.7, 0.6)


def run(scale: float = 0.1, seed: int = 0) -> ExperimentResult:
    """Sweep a static uncore frequency on training and inference loads."""
    workloads = {
        "gpt3 (training)": generate("gpt3", scale=scale, seed=seed),
        "llama2 (inference)": generate(
            "llama2_inference", scale=min(1.0, scale * 5), seed=seed
        ),
    }
    rows = []
    summary: dict[str, dict[float, tuple[float, float]]] = {}
    for label, trace in workloads.items():
        base_spec = default_npu_spec()
        baseline = NpuDevice(base_spec).run_stable(trace)
        summary[label] = {}
        for uncore_scale in UNCORE_SCALES:
            spec = (
                base_spec
                if uncore_scale == 1.0
                else base_spec.with_uncore_frequency(uncore_scale)
            )
            result = NpuDevice(spec).run_stable(trace)
            loss = (result.duration_us - baseline.duration_us) / (
                baseline.duration_us
            )
            soc_cut = 1.0 - result.soc_avg_watts / baseline.soc_avg_watts
            summary[label][uncore_scale] = (loss, soc_cut)
            rows.append(
                {
                    "workload": label,
                    "uncore_scale": uncore_scale,
                    "perf_loss": percent(loss),
                    "soc_reduction": percent(soc_cut),
                    "soc_w": round(result.soc_avg_watts, 1),
                }
            )

    training = summary["gpt3 (training)"]
    inference = summary["llama2 (inference)"]
    return ExperimentResult(
        experiment_id="ext_uncore",
        title="Uncore-DVFS potential (Sect. 8.2 future work)",
        paper_reference={
            "observation": "uncore components average ~80% of SoC power "
            "and cannot be frequency-tuned on current hardware, limiting "
            "overall savings to ~5% SoC",
        },
        measured={
            "training_soc_cut_at_0p8": training[0.8][1],
            "training_loss_at_0p8": training[0.8][0],
            "inference_soc_cut_at_0p8": inference[0.8][1],
            "inference_loss_at_0p8": inference[0.8][0],
            "training_tolerates_better": (
                training[0.8][0] < inference[0.8][0]
            ),
            "savings_scale_with_uncore": (
                training[0.6][1] > training[0.9][1]
            ),
        },
        rows=rows,
        notes=(
            "A hypothetical uncore clock: bandwidth and the dynamic share "
            "of uncore power scale together.  The result is the dual of "
            "Sect. 8.4: weight-streaming inference is bandwidth-bound, so "
            "uncore cuts hit its latency directly, while compute-bound "
            "training absorbs moderate uncore cuts — core DVFS suits "
            "inference, uncore DVFS suits training.  A future per-phase "
            "core+uncore policy would pick the right knob per stage."
        ),
    )
