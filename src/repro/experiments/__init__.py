"""Experiment harness: one module per table/figure of the paper.

Run experiments from Python::

    from repro.experiments import run_experiment
    print(run_experiment("fig09").render())

or from the shell::

    repro-experiments table3 --scale 0.1
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult", "experiment_ids", "run_experiment"]


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (lazy import to keep startup light)."""
    from repro.experiments.registry import run_experiment as _run

    return _run(experiment_id, **kwargs)


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    from repro.experiments.registry import experiment_ids as _ids

    return _ids()
