"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Examples::

    repro-experiments --list
    repro-experiments fig09
    repro-experiments table3 --scale 0.1 --iterations 300
    repro-experiments all --scale 0.05 --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.errors import ReproError
from repro.experiments.registry import experiment_ids, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of the ASPLOS'25 "
            "fine-grained-DVFS paper on the simulated NPU."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e.g. fig15, table3) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: each experiment's own default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root random seed"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="GA iterations (search experiments only)",
    )
    parser.add_argument(
        "--population",
        type=int,
        default=None,
        help="GA population size (search experiments only)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the result as JSON (one file per experiment; for "
        "'all', the experiment id is appended)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small fast settings (tiny scale, short GA) for smoke runs",
    )
    return parser


#: Experiments that accept GA-size keyword arguments.
_GA_EXPERIMENTS = {
    "ext_cluster",
    "ext_fault_tolerance",
    "ext_fleet",
    "ext_granularity",
    "ext_robustness",
    "ext_surrogate",
    "ext_whole_program",
    "fig14",
    "fig17",
    "fig18",
    "table3",
}


def _kwargs_for(experiment_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.quick:
        kwargs["scale"] = 0.05
        if experiment_id in _GA_EXPERIMENTS:
            kwargs["iterations"] = 120
            kwargs["population"] = 60
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if experiment_id in _GA_EXPERIMENTS:
        if args.iterations is not None:
            kwargs["iterations"] = args.iterations
        if args.population is not None:
            kwargs["population"] = args.population
    return kwargs


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    targets = (
        experiment_ids() if args.experiment == "all" else [args.experiment]
    )
    for experiment_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(
                experiment_id, **_kwargs_for(experiment_id, args)
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.render())
        print(f"[{experiment_id} finished in "
              f"{time.perf_counter() - start:.1f}s]\n")
        if args.json:
            path = args.json
            if len(targets) > 1:
                path = f"{path}.{experiment_id}.json"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.to_json())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
