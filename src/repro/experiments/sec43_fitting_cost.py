"""Sect. 4.3 — fitting-cost comparison: Func. 2 closed form vs curve_fit.

The paper reports that fitting Func. 2 to the 4,343 operators of
ShuffleNetV2Plus takes 4,386 ms (direct parameter calculation), while
Func. 1 via scipy's curve_fit takes 105,930 ms — a ~24x gap that motivates
deploying Func. 2.  We time both fitters over the same operator
population, and additionally time the stacked batch fitters
(:data:`repro.perf.fitting.BATCH_FITTERS`) that the batched cold path
uses: one multi-RHS solve over the whole population instead of a Python
loop of per-operator fits.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.rng import RngFactory
from repro.experiments.base import ExperimentResult
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    default_npu_spec,
)
from repro.perf import fit_func1, fit_func2
from repro.perf.fitting import fit_func1_batch, fit_func2_batch
from repro.workloads import generate


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Time Func. 2 vs Func. 1 fitting over the ShuffleNetV2Plus operators."""
    spec = default_npu_spec()
    device = NpuDevice(spec)
    profiler = CannStyleProfiler(spec, RngFactory(seed).generator("sec43"))
    trace = generate("shufflenetv2plus", scale=scale, seed=seed)
    freqs = (1000.0, 1400.0, 1800.0)
    reports = [
        profiler.profile(
            device.run(trace, FrequencyTimeline.constant(freq),
                       initial_celsius=60.0)
        )
        for freq in freqs
    ]
    durations = {r.freq_label_mhz: r.durations_by_name() for r in reports}
    compute_names = [
        op.name for op in reports[0].compute_operators()
    ]
    samples = {
        name: [durations[f][name] for f in freqs] for name in compute_names
    }

    start = time.perf_counter()
    for name in compute_names:
        fit_func2([freqs[0], freqs[-1]],
                  [samples[name][0], samples[name][-1]])
    func2_ms = (time.perf_counter() - start) * 1000.0

    start = time.perf_counter()
    for name in compute_names:
        fit_func1(freqs, samples[name])
    func1_ms = (time.perf_counter() - start) * 1000.0

    # Batched cold path: the same populations as single stacked solves.
    times = np.array([samples[name] for name in compute_names])
    start = time.perf_counter()
    fit_func2_batch((freqs[0], freqs[-1]), times[:, [0, -1]])
    func2_batch_ms = (time.perf_counter() - start) * 1000.0

    start = time.perf_counter()
    fit_func1_batch(freqs, times)
    func1_batch_ms = (time.perf_counter() - start) * 1000.0

    speedup = func1_ms / func2_ms if func2_ms > 0 else float("inf")
    batch_speedup = (
        func1_ms / func1_batch_ms if func1_batch_ms > 0 else float("inf")
    )
    return ExperimentResult(
        experiment_id="sec43",
        title="Fitting cost: Func. 2 closed form vs curve_fit (Sect. 4.3)",
        paper_reference={
            "operators": 4343,
            "func2_ms": 4386.0,
            "func1_ms": 105930.0,
            "speedup": 105930.0 / 4386.0,
        },
        measured={
            "operators": len(compute_names),
            "func2_ms": func2_ms,
            "func1_ms": func1_ms,
            "func2_batch_ms": func2_batch_ms,
            "func1_batch_ms": func1_batch_ms,
            "speedup": speedup,
            "batch_speedup": batch_speedup,
            "func2_wins": func2_ms < func1_ms,
        },
        rows=[
            {"fitter": "func2 (closed form)", "wall_ms": round(func2_ms, 1)},
            {"fitter": "func1 (curve_fit)", "wall_ms": round(func1_ms, 1)},
            {
                "fitter": "func2 (stacked batch)",
                "wall_ms": round(func2_batch_ms, 3),
            },
            {
                "fitter": "func1 (stacked batch)",
                "wall_ms": round(func1_batch_ms, 3),
            },
        ],
        notes=(
            "Absolute milliseconds depend on the host; the preserved claim "
            "is the large closed-form-vs-curve_fit gap on the same "
            "operator population.  The stacked batch fitters collapse the "
            "per-operator Python loop into one multi-RHS solve and "
            "reproduce the scalar parameters (Func. 2 bit for bit, "
            "Func. 1 <= 1e-9 relative)."
        ),
    )
