"""Sect. 8.4 — model-inference (host-bound) scenario.

The paper's preliminary Llama2 experiment: inference decoding is
host-bound (the CPU dispatches operators slower than the NPU executes
them), so lowering every operator to 1300 MHz mostly fills existing idle
time — 2.48% performance degradation buys an 11.26% SoC and 25.06% AICore
power reduction.
"""

from __future__ import annotations

from repro.dvfs import DvfsExecutor, constant_strategy
from repro.experiments.base import ExperimentResult, percent
from repro.npu import NpuDevice, default_npu_spec
from repro.workloads import generate

PAPER = {"loss": 0.0248, "soc_reduction": 0.1126, "aicore_reduction": 0.2506}


def run(
    scale: float = 0.5,
    seed: int = 0,
    freq_mhz: float = 1300.0,
) -> ExperimentResult:
    """Drop all inference operators to ``freq_mhz`` and measure the trade."""
    device = NpuDevice(default_npu_spec())
    executor = DvfsExecutor(device)
    trace = generate("llama2_inference", scale=scale, seed=seed)
    baseline = device.run_stable(trace)
    strategy = constant_strategy(
        trace.name, freq_mhz, duration_us=baseline.duration_us
    )
    outcome = executor.execute_with_baseline(trace, strategy)

    # Quantify the host-bound character: NPU idle fraction at the baseline.
    from repro.npu.device import IDLE_INDEX

    idle_us = sum(
        c.duration_us for c in baseline.chunks if c.op_index == IDLE_INDEX
    )
    idle_fraction = idle_us / baseline.duration_us

    rows = [
        {
            "config": "baseline 1800 MHz",
            "duration_s": round(outcome.baseline.duration_us / 1e6, 4),
            "soc_w": round(outcome.baseline.soc_avg_watts, 1),
            "aicore_w": round(outcome.baseline.aicore_avg_watts, 1),
        },
        {
            "config": f"all operators at {freq_mhz:.0f} MHz",
            "duration_s": round(outcome.result.duration_us / 1e6, 4),
            "soc_w": round(outcome.result.soc_avg_watts, 1),
            "aicore_w": round(outcome.result.aicore_avg_watts, 1),
        },
    ]
    return ExperimentResult(
        experiment_id="sec84",
        title="Host-bound Llama2 inference under uniform DVFS (Sect. 8.4)",
        paper_reference=PAPER,
        measured={
            "perf_loss": outcome.performance_loss,
            "soc_reduction": outcome.soc_power_reduction,
            "aicore_reduction": outcome.aicore_power_reduction,
            "baseline_idle_fraction": idle_fraction,
            "loss_far_below_frequency_cut": (
                outcome.performance_loss < (1800.0 / freq_mhz - 1.0) / 3
            ),
        },
        rows=rows,
        notes=(
            f"Perf loss: {percent(outcome.performance_loss)} vs the "
            f"{percent(1800.0 / freq_mhz - 1.0)} slowdown a compute-bound "
            "workload would suffer — the NPU's idle time absorbs most of "
            "the frequency cut."
        ),
    )
