"""Registry of experiments, keyed by the paper artifact they regenerate."""

from __future__ import annotations

import difflib
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ext_cluster,
    ext_fault_tolerance,
    ext_fleet,
    ext_fleet_scale,
    ext_granularity,
    ext_robustness,
    ext_surrogate,
    ext_uncore_dvfs,
    ext_whole_program,
    fig09_voltage_frequency,
    fig14_anchoring_ablation,
    fig10_temperature_power,
    fig15_perf_error_cdf,
    fig16_operator_predictions,
    fig17_ga_convergence,
    fig18_comparative,
    sec43_fitting_cost,
    sec6_sensitivity,
    sec81_model_free,
    sec84_inference,
    table2_power_model_error,
    table3_end_to_end,
)
from repro.experiments.base import ExperimentResult

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "ext_cluster": ext_cluster.run,
    "ext_fault_tolerance": ext_fault_tolerance.run,
    "ext_fleet": ext_fleet.run,
    "ext_fleet_scale": ext_fleet_scale.run,
    "ext_granularity": ext_granularity.run,
    "ext_robustness": ext_robustness.run,
    "ext_surrogate": ext_surrogate.run,
    "ext_uncore": ext_uncore_dvfs.run,
    "ext_whole_program": ext_whole_program.run,
    "fig09": fig09_voltage_frequency.run,
    "fig10": fig10_temperature_power.run,
    "fig14": fig14_anchoring_ablation.run,
    "fig15": fig15_perf_error_cdf.run,
    "fig16": fig16_operator_predictions.run,
    "fig17": fig17_ga_convergence.run,
    "fig18": fig18_comparative.run,
    "table2": table2_power_model_error.run,
    "table3": table3_end_to_end.run,
    "sec43": sec43_fitting_cost.run,
    "sec6": sec6_sensitivity.run,
    "sec81": sec81_model_free.run,
    "sec84": sec84_inference.run,
}


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    Raises:
        ExperimentError: for an unknown id.
    """
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        close = difflib.get_close_matches(
            experiment_id, experiment_ids(), n=3
        )
        hint = f" (did you mean {', '.join(map(repr, close))}?)" if close else ""
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}{hint}; "
            f"known: {', '.join(experiment_ids())}"
        ) from None
    return runner(**kwargs)
