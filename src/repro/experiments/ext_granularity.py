"""Extension — savings versus frequency-adjustment-interval granularity.

Fig. 18 samples three adjustment intervals (5 ms, 100 ms, 1 s).  This
study sweeps the interval continuously to expose the whole curve: finer
intervals give the search more candidates and more savings, until the
stage count saturates at the workload's natural LFC/HFC alternation.
"""

from __future__ import annotations

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.units import ms_to_us
from repro.workloads import generate

#: Adjustment intervals swept, as fractions of the paper's 5 ms baseline
#: scaled to the generated trace (x1 = 5 ms at scale 1.0).
INTERVAL_MULTIPLIERS = (1.0, 2.0, 5.0, 20.0, 60.0, 200.0)


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 400,
    population: int = 150,
) -> ExperimentResult:
    """Sweep the adjustment interval on GPT-3 at the 2% target."""
    trace = generate("gpt3", scale=scale, seed=seed)
    calibration = None
    rows = []
    reductions = []
    for multiplier in INTERVAL_MULTIPLIERS:
        if multiplier == 1.0:
            # The paper's production granularity, always absolute.
            interval_us = ms_to_us(5.0)
        else:
            interval_us = ms_to_us(5.0) * multiplier * max(scale, 0.02) / 0.1
        config = OptimizerConfig(
            performance_loss_target=0.02,
            adjustment_interval_us=interval_us,
            ga=GaConfig(population_size=population, iterations=iterations,
                        seed=seed, patience=80),
            seed=seed,
        )
        optimizer = EnergyOptimizer(config)
        if calibration is not None:
            optimizer.use_calibration(calibration)
        report = optimizer.optimize(trace)
        calibration = optimizer.calibrate()
        reductions.append(report.aicore_power_reduction)
        rows.append(
            {
                "interval_ms": round(interval_us / 1000.0, 2),
                "stages": report.stage_count,
                "setfreq": report.setfreq_count,
                "perf_loss": percent(report.performance_loss),
                "aicore_reduction": percent(report.aicore_power_reduction),
            }
        )

    finest, coarsest = reductions[0], reductions[-1]
    return ExperimentResult(
        experiment_id="ext_granularity",
        title="Savings vs adjustment-interval granularity",
        paper_reference={
            "fig18": "5 ms -> 100 ms -> 1 s loses savings (821/38/4 SetFreq)",
        },
        measured={
            "finest_reduction": finest,
            "coarsest_reduction": coarsest,
            "finer_is_better": finest >= coarsest,
            "setfreq_monotone_nonincreasing": all(
                a >= b
                for a, b in zip(
                    [row["setfreq"] for row in rows],
                    [row["setfreq"] for row in rows][1:],
                )
            ),
        },
        rows=rows,
        notes=(
            "Intervals are scaled with the trace so the granularity "
            "relative to the iteration matches a full-size run; the first "
            "row corresponds to the paper's 5 ms production setting."
        ),
    )
