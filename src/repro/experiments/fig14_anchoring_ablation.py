"""Fig. 14 ablation — operator-anchored vs wall-clock SetFreq triggering.

The paper's executor synchronises SetFreq with the compute stream via
Event Record/Wait so each frequency change lands exactly at its intended
operator (Fig. 14).  This ablation executes the *same* strategy two ways:

* **anchored** — the Fig. 14 mechanism (our default executor);
* **wall-clock** — SetFreq fired at the baseline-profiled timestamps with
  no synchronisation.  Under DVFS the execution shifts relative to the
  plan, so later switches land on the wrong operators.

The anchored mechanism should dominate on the Eq. 17 efficiency metric.
"""

from __future__ import annotations

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.workloads import generate


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 400,
    population: int = 150,
) -> ExperimentResult:
    """Execute one strategy with and without operator anchoring."""
    config = OptimizerConfig(
        performance_loss_target=0.02,
        ga=GaConfig(population_size=population, iterations=iterations,
                    seed=seed),
        seed=seed,
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=scale, seed=seed)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    strategy, _, _ = optimizer.search(trace, models, candidates)

    executor = optimizer.executor
    device = optimizer.device
    baseline = device.run_stable(trace)
    anchored = device.run_stable(trace, executor.compile(strategy))
    wall_clock = device.run_stable(
        trace, executor.compile_wall_clock(strategy)
    )

    def metrics(result):
        loss = (result.duration_us - baseline.duration_us) / (
            baseline.duration_us
        )
        reduction = 1.0 - result.aicore_avg_watts / baseline.aicore_avg_watts
        per_norm = 1.0 / (1.0 + loss)
        score = per_norm * per_norm / (1.0 - reduction)
        return loss, reduction, score

    anchored_loss, anchored_cut, anchored_score = metrics(anchored)
    wall_loss, wall_cut, wall_score = metrics(wall_clock)

    rows = [
        {
            "executor": "anchored (Fig. 14 event sync)",
            "perf_loss": percent(anchored_loss),
            "aicore_reduction": percent(anchored_cut),
            "efficiency_score": round(anchored_score, 4),
        },
        {
            "executor": "wall-clock (no sync)",
            "perf_loss": percent(wall_loss),
            "aicore_reduction": percent(wall_cut),
            "efficiency_score": round(wall_score, 4),
        },
    ]
    return ExperimentResult(
        experiment_id="fig14",
        title="SetFreq anchoring ablation (Fig. 14 mechanism)",
        paper_reference={
            "mechanism": "Event Record/Wait keeps SetFreq aligned with the "
            "intended operator despite timeline shifts",
        },
        measured={
            "anchored_efficiency": anchored_score,
            "wall_clock_efficiency": wall_score,
            "anchoring_helps": anchored_score >= wall_score,
            "anchored_within_target": anchored_loss
            <= config.performance_loss_target + 0.003,
        },
        rows=rows,
        notes=(
            "Both runs execute the identical strategy; only the trigger "
            "mechanism differs.  Without synchronisation the plan's "
            "wall-clock switch times drift off the shifted execution, so "
            "low-frequency windows land on the wrong operators."
        ),
    )
