"""Extension — surrogate-assisted strategy search quality and speed.

The exact Eq. (17) scorer prices every candidate through the per-stage
time/energy tables plus the Sect. 5.4.2 thermal fixed point.  The
multi-fidelity search (:mod:`repro.dvfs.surrogate`) fits a closed-form
ridge surrogate of that objective from the scorer's own stage tables,
lets the GA's inner generations explore on it, and re-scores each
generation's shortlist plus the final population with the exact oracle —
so the returned ``best_score`` is always the analytical model's number,
never the surrogate's (the NeuroScalar-style cheap-model/exact-oracle
split; see ``docs/paper_mapping.md``).

This study runs both searches over several seeds on GPT-3 and Llama-2
and reports wall time, holdout R², and the exact-score ratio between the
two arms.
"""

from __future__ import annotations

import time

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult
from repro.workloads import generate

#: Seeds swept per workload (distinct profiling noise + GA streams).
SEEDS = (0, 1, 2)
WORKLOADS = ("gpt3", "llama2_inference")


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 400,
    population: int = 150,
) -> ExperimentResult:
    """Exact vs surrogate-assisted GA over seeds and workloads."""
    calibration = EnergyOptimizer(OptimizerConfig()).calibrate()
    rows = []
    ratios = []
    r2s = []
    oracle_exact = True
    speedups = []
    for workload in WORKLOADS:
        trace = generate(workload, scale=scale, seed=seed)
        for run_seed in SEEDS:
            ga = GaConfig(
                population_size=population,
                iterations=iterations,
                seed=seed + run_seed,
                patience=80,
            )
            base = OptimizerConfig(ga=ga, seed=seed + run_seed)
            optimizer = EnergyOptimizer(base)
            optimizer.use_calibration(calibration)
            bundle = optimizer.profile(trace)
            models = optimizer.build_models(bundle)
            candidates = optimizer.preprocess(bundle)

            t0 = time.perf_counter()
            _, scorer, exact = optimizer.search(trace, models, candidates)
            exact_seconds = time.perf_counter() - t0

            surr_optimizer = EnergyOptimizer(base.with_surrogate())
            surr_optimizer.use_calibration(calibration)
            t0 = time.perf_counter()
            _, _, surr = surr_optimizer.search(trace, models, candidates)
            surr_seconds = time.perf_counter() - t0

            # The multi-fidelity contract: the surrogate arm's best score
            # must be the exact oracle's number for its best genes.
            oracle_score = float(
                scorer.score(surr.best_genes[None, :])[0]
            )
            oracle_exact = oracle_exact and oracle_score == surr.best_score
            ratio = surr.best_score / exact.best_score
            ratios.append(ratio)
            if surr.surrogate_r2 is not None:
                r2s.append(surr.surrogate_r2)
            speedup = exact_seconds / surr_seconds if surr_seconds else 0.0
            speedups.append(speedup)
            rows.append(
                {
                    "workload": workload,
                    "seed": seed + run_seed,
                    "exact_score": round(exact.best_score, 6),
                    "surrogate_score": round(surr.best_score, 6),
                    "score_ratio": round(ratio, 5),
                    "holdout_r2": (
                        round(surr.surrogate_r2, 4)
                        if surr.surrogate_r2 is not None
                        else "fallback"
                    ),
                    "surrogate_used": surr.surrogate_used,
                    "oracle_evals_exact": exact.evaluations,
                    "oracle_evals_surrogate": surr.evaluations,
                    "ga_speedup": round(speedup, 2),
                }
            )

    return ExperimentResult(
        experiment_id="ext_surrogate",
        title="Surrogate-assisted search vs the exact Eq. (17) GA",
        paper_reference={
            "eq17": "score = 2*Per^2/Power when meeting the time bound",
            "sect_6_3": "GA strategy search the surrogate accelerates",
        },
        measured={
            "worst_score_ratio": min(ratios),
            "best_score_ratio": max(ratios),
            "within_1pct": min(ratios) >= 0.99,
            "oracle_score_exact": oracle_exact,
            "min_holdout_r2": min(r2s) if r2s else None,
            "mean_ga_speedup": sum(speedups) / len(speedups),
        },
        rows=rows,
        notes=(
            "Both arms share profiling, models and staging per seed, so "
            "the comparison isolates the search. The surrogate arm's "
            "best_score is re-checked against the exact scorer bitwise "
            "(oracle_score_exact); quality is the exact-score ratio, "
            "which the serving gate requires to stay within 1%."
        ),
    )
