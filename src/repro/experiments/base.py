"""Common infrastructure for the experiment harness.

Every experiment module exposes ``run(scale=..., seed=...) -> ExperimentResult``
regenerating one table or figure of the paper.  Results carry both the
measured rows/series and the paper's reported values, so EXPERIMENTS.md can
be produced directly from harness output.

``scale`` shrinks workload sizes (structure-preserving) so experiments run
in seconds to minutes on a laptop; the paper-parity setting is
``scale=1.0`` with the default GA configuration.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

from repro.core.report import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    #: What the paper reports for this artifact (for side-by-side tables).
    paper_reference: dict[str, Any]
    #: Headline measured values.
    measured: dict[str, Any]
    #: Row-wise data (table rows or series points).
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def to_json(self) -> str:
        """Machine-readable record of the run (for archiving/regression)."""
        return json.dumps(asdict(self), default=str, indent=2)

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            lines.append(format_table(self.rows))
        if self.measured:
            lines.append("")
            lines.append("measured:")
            for key, value in self.measured.items():
                lines.append(f"  {key}: {_fmt(value)}")
        if self.paper_reference:
            lines.append("paper reports:")
            for key, value in self.paper_reference.items():
                lines.append(f"  {key}: {_fmt(value)}")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)) and value and isinstance(value[0], float):
        return "[" + ", ".join(f"{v:.4g}" for v in value) + "]"
    return str(value)


def percent(value: float) -> str:
    """Format a fraction as a percent string for table rows."""
    return f"{value:.2%}"


def downsample(series: Sequence[float], points: int = 30) -> list[float]:
    """Thin a long series to ~``points`` entries (keeps first and last)."""
    if len(series) <= points:
        return list(series)
    step = max(1, len(series) // points)
    thinned = list(series[::step])
    if thinned[-1] != series[-1]:
        thinned.append(series[-1])
    return thinned
