"""Extension — whole-program DVFS baseline vs operator-level DVFS.

The prior work the paper's introduction criticises sets one frequency for
the entire application run (or for multi-second sub-phases).  This
experiment implements that baseline faithfully: sweep every constant
frequency, keep the best one that satisfies the performance-loss target,
and compare it against the operator-level strategy produced by the full
pipeline on the same workload.

On compute-dominated training workloads any global frequency reduction
blows the 2% budget immediately, so whole-program DVFS saves (almost)
nothing — fine-grained control is where the paper's gains come from.
"""

from __future__ import annotations

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig, constant_strategy
from repro.experiments.base import ExperimentResult, percent
from repro.workloads import generate


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 600,
    population: int = 200,
    workload: str = "gpt3",
    loss_target: float = 0.02,
) -> ExperimentResult:
    """Compare the whole-program baseline against operator-level DVFS."""
    config = OptimizerConfig(
        performance_loss_target=loss_target,
        ga=GaConfig(population_size=population, iterations=iterations,
                    seed=seed),
        seed=seed,
    )
    optimizer = EnergyOptimizer(config)
    trace = generate(workload, scale=scale, seed=seed)
    device = optimizer.device
    executor = optimizer.executor

    baseline = device.run_stable(trace)
    rows = []
    best_constant = None
    for freq in config.npu.frequencies.points:
        strategy = constant_strategy(trace.name, freq, baseline.duration_us)
        outcome = executor.execute_with_baseline(trace, strategy)
        feasible = outcome.performance_loss <= loss_target
        rows.append(
            {
                "config": f"whole-program {freq:.0f} MHz",
                "perf_loss": percent(outcome.performance_loss),
                "aicore_reduction": percent(outcome.aicore_power_reduction),
                "feasible": feasible,
            }
        )
        if feasible and (
            best_constant is None
            or outcome.aicore_power_reduction
            > best_constant.aicore_power_reduction
        ):
            best_constant = outcome

    fine_grained = optimizer.optimize(trace)
    rows.append(
        {
            "config": "operator-level DVFS (this paper)",
            "perf_loss": percent(fine_grained.performance_loss),
            "aicore_reduction": percent(
                fine_grained.aicore_power_reduction
            ),
            "feasible": fine_grained.performance_loss <= loss_target + 0.003,
        }
    )

    constant_reduction = (
        best_constant.aicore_power_reduction if best_constant else 0.0
    )
    return ExperimentResult(
        experiment_id="ext_whole_program",
        title="Whole-program DVFS baseline vs operator-level DVFS",
        paper_reference={
            "motivation": "prior work applies DVFS per program run or "
            "multi-second sub-phase (Sect. 1); fine-grained control is the "
            "paper's contribution",
        },
        measured={
            "best_whole_program_reduction": constant_reduction,
            "operator_level_reduction": fine_grained.aicore_power_reduction,
            "fine_grained_wins": (
                fine_grained.aicore_power_reduction > constant_reduction
            ),
            "advantage": fine_grained.aicore_power_reduction
            - constant_reduction,
        },
        rows=rows,
        notes=(
            "The whole-program baseline may only pick a single frequency "
            "that keeps measured loss within the target; on training "
            "workloads that forces it to (or next to) the maximum "
            "frequency, while the operator-level strategy lowers only the "
            "insensitive stages."
        ),
    )
