"""repro — analytical performance/power models and fine-grained DVFS.

A full reproduction of "Using Analytical Performance/Power Model and
Fine-Grained DVFS to Enhance AI Accelerator Energy Efficiency"
(ASPLOS 2025) on a simulated Ascend-class NPU.

Quickstart::

    from repro import EnergyOptimizer, OptimizerConfig
    from repro.workloads import generate

    optimizer = EnergyOptimizer(OptimizerConfig(performance_loss_target=0.02))
    report = optimizer.optimize(generate("bert", scale=0.2))
    print(report.summary())
"""

from repro.core import EnergyOptimizer, OptimizationReport, OptimizerConfig
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "EnergyOptimizer",
    "OptimizationReport",
    "OptimizerConfig",
    "ReproError",
    "__version__",
]
