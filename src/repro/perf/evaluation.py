"""Performance-model validation (Sect. 7.2, Fig. 15/16).

Given a fitted workload model and held-out profiler reports (frequencies
that were *not* used for fitting), compute per-operator prediction errors,
their CDF, and the headline accuracy statistics the paper reports (average
error 1.96%; >90% of predictions within 5%; >98% within 10%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.stats import ErrorSummary, empirical_cdf, summarize_errors
from repro.errors import ProfilingError
from repro.npu.profiler import (
    ProfileReport,
    SHORT_OPERATOR_CUTOFF_US,
    merge_reports,
)
from repro.perf.model import WorkloadPerformanceModel


@dataclass(frozen=True)
class PredictionRecord:
    """One (operator, frequency) prediction versus measurement."""

    name: str
    op_type: str
    freq_mhz: float
    predicted_us: float
    measured_us: float

    @property
    def error(self) -> float:
        """Absolute relative error of the prediction."""
        return abs(self.predicted_us - self.measured_us) / self.measured_us


@dataclass(frozen=True)
class PerformanceValidation:
    """Validation outcome for one workload model."""

    trace_name: str
    records: tuple[PredictionRecord, ...]
    summary: ErrorSummary

    @property
    def data_points(self) -> int:
        """Number of (operator, frequency) validation points."""
        return len(self.records)

    def error_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of prediction errors (Fig. 15's presentation)."""
        return empirical_cdf([record.error for record in self.records])

    def errors_for(self, name: str) -> list[PredictionRecord]:
        """All validation records of one operator, sorted by frequency."""
        return sorted(
            (r for r in self.records if r.name == name),
            key=lambda r: r.freq_mhz,
        )


def validate_performance_model(
    model: WorkloadPerformanceModel,
    reports: Sequence[ProfileReport],
    holdout_freqs_mhz: Sequence[float] | None = None,
    cutoff_us: float = SHORT_OPERATOR_CUTOFF_US,
) -> PerformanceValidation:
    """Compare model predictions against measured durations.

    Args:
        model: the fitted workload model.
        reports: profiler reports (any frequencies; those used for fitting
            are excluded automatically unless ``holdout_freqs_mhz`` is
            given explicitly).
        holdout_freqs_mhz: frequencies to validate on.
        cutoff_us: operators faster than this (at the report frequency) are
            excluded, matching Sect. 7.2's protocol.

    Raises:
        ProfilingError: if no validation frequencies remain.
    """
    ordered = merge_reports(reports)
    if holdout_freqs_mhz is None:
        holdout = [
            r.freq_label_mhz
            for r in ordered
            if r.freq_label_mhz not in model.fit_freqs_mhz
        ]
    else:
        holdout = [float(f) for f in holdout_freqs_mhz]
    if not holdout:
        raise ProfilingError("no held-out frequencies to validate on")

    records: list[PredictionRecord] = []
    for report in ordered:
        if report.freq_label_mhz not in holdout:
            continue
        for op in report.significant_operators(cutoff_us):
            if op.name not in model.operators:
                continue
            if not model.operators[op.name].frequency_sensitive:
                continue
            predicted = model.predict_time_us(op.name, report.freq_label_mhz)
            records.append(
                PredictionRecord(
                    name=op.name,
                    op_type=op.op_type,
                    freq_mhz=report.freq_label_mhz,
                    predicted_us=predicted,
                    measured_us=op.duration_us,
                )
            )
    if not records:
        raise ProfilingError("no validation records produced")
    summary = summarize_errors([record.error for record in records])
    return PerformanceValidation(
        trace_name=model.trace_name,
        records=tuple(records),
        summary=summary,
    )
