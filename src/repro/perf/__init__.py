"""Performance modelling: white-box cycle analysis and fitted surrogates.

Implements Sect. 4 of the paper: the analytical convex piecewise-linear
cycle model, the three candidate fitting functions, per-workload model
construction from profiler reports, and held-out validation.
"""

from repro.perf.cycle_model import OperatorCycleModel, TransferLaw
from repro.perf.evaluation import (
    PerformanceValidation,
    PredictionRecord,
    validate_performance_model,
)
from repro.perf.fitting import (
    FitFunction,
    PerformanceFit,
    fit_func1,
    fit_func2,
    fit_func3,
    fit_performance,
    select_fit_frequencies,
)
from repro.perf.piecewise import (
    PiecewiseLinear,
    ideal_cycle_pwl,
    ideal_transfer_pwl,
)
from repro.perf.model import (
    OperatorPerformanceModel,
    WorkloadPerformanceModel,
    build_performance_model,
    patch_missing_operators,
)

__all__ = [
    "FitFunction",
    "OperatorCycleModel",
    "OperatorPerformanceModel",
    "PerformanceFit",
    "PerformanceValidation",
    "PiecewiseLinear",
    "PredictionRecord",
    "TransferLaw",
    "WorkloadPerformanceModel",
    "build_performance_model",
    "fit_func1",
    "fit_func2",
    "fit_func3",
    "fit_performance",
    "ideal_cycle_pwl",
    "ideal_transfer_pwl",
    "patch_missing_operators",
    "select_fit_frequencies",
    "validate_performance_model",
]
