"""Exact piecewise-linear algebra for the ideal cycle model (paper Fig. 4).

Sect. 4.3 discusses how the relationship between the DVFS range
``[f_min, f_max]`` and the breakpoints ``f_s(St), f_2, f_s(Ld), f_4`` of
the ideal (un-smoothed) cycle function yields performance models with one
to five linear segments.  This module provides the small exact algebra
needed to *construct* those functions symbolically — linear pieces
combined with sums, scalar multiples, and pointwise maxima — and to
enumerate their breakpoints and segments precisely.

The simulator's ground truth uses a smoothed saturation corner (see
``MemoryHierarchy.saturation_sharpness``); this module analyses the ideal
``max()`` form the paper's mathematics is written in.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.npu.operators import OperatorSpec
from repro.npu.memory import MemoryHierarchy
from repro.npu.timeline import Scenario

#: Relative tolerance for slope comparisons when counting segments.
_SLOPE_TOL = 1e-9


@dataclass(frozen=True)
class PiecewiseLinear:
    """An exact piecewise-linear function on a closed domain.

    Represented by its knots: strictly increasing x-values (including the
    domain endpoints) and the function values there; the function is
    linear between consecutive knots.
    """

    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or len(self.xs) < 2:
            raise ConfigurationError("need >= 2 aligned knots")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise ConfigurationError("knot xs must be strictly increasing")

    @classmethod
    def linear(
        cls, slope: float, intercept: float, domain: tuple[float, float]
    ) -> "PiecewiseLinear":
        """The line ``slope * x + intercept`` restricted to ``domain``."""
        lo, hi = domain
        if hi <= lo:
            raise ConfigurationError(f"empty domain: {domain}")
        return cls(
            xs=(lo, hi), ys=(slope * lo + intercept, slope * hi + intercept)
        )

    @classmethod
    def constant(
        cls, value: float, domain: tuple[float, float]
    ) -> "PiecewiseLinear":
        """A constant function on ``domain``."""
        return cls.linear(0.0, value, domain)

    @property
    def domain(self) -> tuple[float, float]:
        """The closed interval the function is defined on."""
        return self.xs[0], self.xs[-1]

    def __call__(self, x: float) -> float:
        lo, hi = self.domain
        if not lo <= x <= hi:
            raise ConfigurationError(f"{x} outside domain {self.domain}")
        for x0, x1, y0, y1 in zip(self.xs, self.xs[1:], self.ys, self.ys[1:]):
            if x <= x1:
                t = (x - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        return self.ys[-1]  # pragma: no cover - unreachable

    def _resampled(self, xs: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(self(x) for x in xs)

    def _merged_knots(self, other: "PiecewiseLinear") -> tuple[float, ...]:
        if self.domain != other.domain:
            raise ConfigurationError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )
        xs = sorted(set(self.xs) | set(other.xs))
        return tuple(xs)

    def __add__(self, other: "PiecewiseLinear") -> "PiecewiseLinear":
        xs = self._merged_knots(other)
        ys = tuple(
            a + b for a, b in zip(self._resampled(xs), other._resampled(xs))
        )
        return PiecewiseLinear(xs=xs, ys=ys)

    def scaled(self, factor: float) -> "PiecewiseLinear":
        """The function multiplied by a non-negative scalar."""
        if factor < 0:
            raise ConfigurationError("scaling by a negative factor would "
                                     "break convexity guarantees")
        return PiecewiseLinear(
            xs=self.xs, ys=tuple(y * factor for y in self.ys)
        )

    def maximum(self, other: "PiecewiseLinear") -> "PiecewiseLinear":
        """The pointwise maximum, with exact crossing knots inserted."""
        xs = list(self._merged_knots(other))
        # Insert exact crossings between consecutive shared knots.
        for x0, x1 in list(zip(xs, xs[1:])):
            d0 = self(x0) - other(x0)
            d1 = self(x1) - other(x1)
            if d0 * d1 < 0:
                # One crossing; both functions are linear on [x0, x1].
                t = d0 / (d0 - d1)
                insort(xs, x0 + t * (x1 - x0))
        knots = tuple(xs)
        ys = tuple(
            max(a, b)
            for a, b in zip(self._resampled(knots), other._resampled(knots))
        )
        return PiecewiseLinear(xs=knots, ys=ys)

    def slopes(self) -> list[float]:
        """The slope of each knot interval, left to right."""
        return [
            (y1 - y0) / (x1 - x0)
            for x0, x1, y0, y1 in zip(
                self.xs, self.xs[1:], self.ys, self.ys[1:]
            )
        ]

    def breakpoints(self) -> list[float]:
        """Interior x-values where the slope actually changes."""
        result = []
        slopes = self.slopes()
        for x, s0, s1 in zip(self.xs[1:], slopes, slopes[1:]):
            scale = max(1.0, abs(s0), abs(s1))
            if abs(s1 - s0) > _SLOPE_TOL * scale:
                result.append(x)
        return result

    def segment_count(self) -> int:
        """Number of maximal linear segments."""
        return len(self.breakpoints()) + 1

    def is_convex(self) -> bool:
        """Whether slopes are non-decreasing (Sect. 4.2.5's conclusion)."""
        slopes = self.slopes()
        return all(
            b >= a - _SLOPE_TOL * max(1.0, abs(a), abs(b))
            for a, b in zip(slopes, slopes[1:])
        )


def ideal_transfer_pwl(
    volume_bytes: float,
    memory: MemoryHierarchy,
    derate: float,
    domain: tuple[float, float],
) -> PiecewiseLinear:
    """The ideal (hard-``max``) transfer cycles of Eq. (4) as a PWL."""
    if volume_bytes == 0:
        return PiecewiseLinear.constant(0.0, domain)
    a, c = memory.transfer_cycle_coefficients(volume_bytes, derate)
    saturated = PiecewiseLinear.linear(a, 0.0, domain)
    port_limited = PiecewiseLinear.constant(c, domain)
    overhead = PiecewiseLinear.linear(memory.transfer_overhead_us, 0.0, domain)
    return saturated.maximum(port_limited) + overhead


def ideal_cycle_pwl(
    spec: OperatorSpec,
    memory: MemoryHierarchy,
    domain: tuple[float, float] = (1000.0, 1800.0),
) -> PiecewiseLinear:
    """The ideal operator cycle function (Eqs. 5-8, hard maxima) as a PWL.

    Raises:
        ConfigurationError: for non-compute operators.
    """
    if not spec.is_compute or spec.compute is None:
        raise ConfigurationError(
            f"operator {spec.name!r} is not a compute operator"
        )
    compute = spec.compute
    n = compute.n_blocks
    load = ideal_transfer_pwl(
        compute.ld_bytes_per_block, memory, compute.bandwidth_derate, domain
    )
    store = ideal_transfer_pwl(
        compute.st_bytes_per_block, memory, compute.bandwidth_derate, domain
    )
    core = PiecewiseLinear.constant(compute.core_cycles_per_block, domain)
    scenario = compute.scenario
    if scenario is Scenario.PINGPONG_FREE_INDEPENDENT:
        pipeline = (
            load + store + core.scaled(n)
            + load.maximum(store).scaled(n - 1)
        )
    elif scenario is Scenario.PINGPONG_FREE_DEPENDENT:
        pipeline = (load + core + store).scaled(n)
    elif scenario is Scenario.PINGPONG_INDEPENDENT:
        pipeline = (
            load + core + store
            + load.maximum(store).maximum(core).scaled(n - 1)
        )
    else:
        chains_a = (n + 1) // 2
        chains_b = n - chains_a
        serial = load + core + store
        end_a = serial.scaled(chains_a)
        end_b = load.maximum(store).maximum(core) + serial.scaled(chains_b)
        pipeline = end_a.maximum(end_b)
    overhead = PiecewiseLinear.linear(compute.fixed_overhead_us, 0.0, domain)
    return pipeline + overhead
