"""Per-operator and per-workload performance models (Sect. 4.3).

A :class:`WorkloadPerformanceModel` maps every operator name in a profiled
workload to a duration predictor:

* compute operators get a fitted convex surrogate (Func. 2 by default);
* non-compute operators (AICPU, communication, idle) are frequency-
  insensitive and get their measured mean duration as a constant.

Models are constructed from profiler reports gathered at two (or three)
frequencies — exactly the paper's data-collection protocol, where running
each model once per frequency point suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import FittingError, ProfilingError
from repro.npu.operators import OperatorKind
from repro.npu.profiler import ProfileReport, merge_reports
from repro.perf.fitting import (
    FitFunction,
    PerformanceFit,
    fit_performance,
    select_fit_frequencies,
)


@dataclass(frozen=True)
class OperatorPerformanceModel:
    """Duration predictor for one operator name."""

    name: str
    op_type: str
    kind: OperatorKind
    #: Fitted surrogate for compute operators; None for fixed-time ones.
    fit: PerformanceFit | None
    #: Constant duration for non-compute operators (and the fallback).
    constant_us: float

    @property
    def frequency_sensitive(self) -> bool:
        """Whether predictions vary with core frequency."""
        return self.fit is not None

    def predict_time_us(self, freq_mhz: float) -> float:
        """Predicted duration at ``freq_mhz``."""
        if self.fit is None:
            return self.constant_us
        return float(self.fit.predict_time_us(freq_mhz))


@dataclass(frozen=True)
class WorkloadPerformanceModel:
    """Duration predictors for every operator of one workload."""

    trace_name: str
    function: FitFunction
    fit_freqs_mhz: tuple[float, ...]
    operators: Mapping[str, OperatorPerformanceModel]

    def __len__(self) -> int:
        return len(self.operators)

    def predict_time_us(self, name: str, freq_mhz: float) -> float:
        """Predicted duration of operator ``name`` at ``freq_mhz``.

        Raises:
            FittingError: for an unknown operator name.
        """
        try:
            model = self.operators[name]
        except KeyError:
            raise FittingError(
                f"no performance model for operator {name!r}"
            ) from None
        return model.predict_time_us(freq_mhz)

    def duration_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """Matrix of predicted durations, shape ``(len(names), len(freqs))``.

        This is the lookup table the genetic-algorithm scoring uses.
        """
        matrix = np.empty((len(names), len(freqs_mhz)), dtype=float)
        for i, name in enumerate(names):
            for j, freq in enumerate(freqs_mhz):
                matrix[i, j] = self.predict_time_us(name, freq)
        return matrix


def build_performance_model(
    reports: Sequence[ProfileReport],
    function: FitFunction = FitFunction.QUADRATIC_NO_LINEAR,
    fit_freqs_mhz: Sequence[float] | None = None,
) -> WorkloadPerformanceModel:
    """Fit per-operator models from profiler reports at several frequencies.

    Args:
        reports: one report per frequency point for the same trace.
        function: which Sect. 4.3 surrogate to fit for compute operators.
        fit_freqs_mhz: which of the profiled frequencies to fit on;
            defaults to the paper's protocol (extremes, plus the middle for
            three-parameter functions).

    Raises:
        ProfilingError: if the reports are inconsistent.
        FittingError: if too few frequencies are available.
    """
    ordered = merge_reports(reports)
    available = [report.freq_label_mhz for report in ordered]
    if fit_freqs_mhz is None:
        chosen = select_fit_frequencies(available, function)
    else:
        chosen = [float(f) for f in fit_freqs_mhz]
        missing = set(chosen) - set(available)
        if missing:
            raise ProfilingError(
                f"requested fit frequencies {sorted(missing)} not profiled "
                f"(available: {available})"
            )
    by_freq = {r.freq_label_mhz: r.durations_by_name() for r in ordered}
    reference = ordered[0].first_by_name()

    operators: dict[str, OperatorPerformanceModel] = {}
    for name, profiled in reference.items():
        durations = [by_freq[f].get(name) for f in chosen]
        if any(d is None for d in durations):
            raise ProfilingError(
                f"operator {name!r} missing from some frequency reports"
            )
        mean_duration = float(np.mean([d for d in durations if d is not None]))
        if profiled.kind is OperatorKind.COMPUTE:
            try:
                fit = fit_performance(chosen, durations, function)
            except FittingError:
                # A non-converging curve_fit (it happens with Func. 3's
                # bounded exponential) degrades to a constant predictor
                # rather than aborting the whole workload model.
                fit = None
        else:
            fit = None
        operators[name] = OperatorPerformanceModel(
            name=name,
            op_type=profiled.op_type,
            kind=profiled.kind,
            fit=fit,
            constant_us=mean_duration,
        )
    return WorkloadPerformanceModel(
        trace_name=ordered[0].trace_name,
        function=function,
        fit_freqs_mhz=tuple(chosen),
        operators=operators,
    )
