"""Per-operator and per-workload performance models (Sect. 4.3).

A :class:`WorkloadPerformanceModel` maps every operator name in a profiled
workload to a duration predictor:

* compute operators get a fitted convex surrogate (Func. 2 by default);
* non-compute operators (AICPU, communication, idle) are frequency-
  insensitive and get their measured mean duration as a constant.

Models are constructed from profiler reports gathered at two (or three)
frequencies — exactly the paper's data-collection protocol, where running
each model once per frequency point suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.batching import batched_cold_path_enabled
from repro.errors import FittingError, ProfilingError
from repro.npu.operators import OperatorKind
from repro.npu.profiler import ProfileReport, merge_reports
from repro.perf.fitting import (
    BATCH_FITTERS,
    FitFunction,
    PerformanceFit,
    fit_performance,
    select_fit_frequencies,
)


@dataclass(frozen=True)
class OperatorPerformanceModel:
    """Duration predictor for one operator name."""

    name: str
    op_type: str
    kind: OperatorKind
    #: Fitted surrogate for compute operators; None for fixed-time ones.
    fit: PerformanceFit | None
    #: Constant duration for non-compute operators (and the fallback).
    constant_us: float

    @property
    def frequency_sensitive(self) -> bool:
        """Whether predictions vary with core frequency."""
        return self.fit is not None

    def predict_time_us(self, freq_mhz: float) -> float:
        """Predicted duration at ``freq_mhz``."""
        if self.fit is None:
            return self.constant_us
        return float(self.fit.predict_time_us(freq_mhz))


@dataclass(frozen=True)
class WorkloadPerformanceModel:
    """Duration predictors for every operator of one workload."""

    trace_name: str
    function: FitFunction
    fit_freqs_mhz: tuple[float, ...]
    operators: Mapping[str, OperatorPerformanceModel]

    def __len__(self) -> int:
        return len(self.operators)

    def predict_time_us(self, name: str, freq_mhz: float) -> float:
        """Predicted duration of operator ``name`` at ``freq_mhz``.

        Raises:
            FittingError: for an unknown operator name.
        """
        try:
            model = self.operators[name]
        except KeyError:
            raise FittingError(
                f"no performance model for operator {name!r}"
            ) from None
        return model.predict_time_us(freq_mhz)

    def duration_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """Matrix of predicted durations, shape ``(len(names), len(freqs))``.

        This is the lookup table the genetic-algorithm scoring uses.
        With the batched cold path enabled, rows sharing a surrogate
        function are evaluated as one stacked broadcast; the element
        operations (and their association order) match the per-row
        ``predict_time_us`` exactly, so the matrix is bit-identical.
        """
        freqs = np.asarray(list(freqs_mhz), dtype=float)
        matrix = np.empty((len(names), freqs.size), dtype=float)
        stacked = getattr(self, "_stacked", None)
        if stacked is not None and batched_cold_path_enabled():
            # Batch-built model: gather the stacked fit parameters and
            # constants directly instead of walking per-name objects.  The
            # elementwise expressions below match the object path exactly.
            if np.any(freqs <= 0):
                raise FittingError("frequency must be positive")
            index, has_fit, constants, params = stacked
            try:
                rows = np.fromiter(
                    map(index.__getitem__, names),
                    dtype=np.intp,
                    count=len(names),
                )
            except KeyError as exc:
                raise FittingError(
                    f"no performance model for operator {exc.args[0]!r}"
                ) from None
            fit_mask = has_fit[rows]
            const_mask = ~fit_mask
            if const_mask.any():
                matrix[const_mask] = (
                    constants[rows[const_mask]][:, None]
                )
            if fit_mask.any():
                p = params[rows[fit_mask]]
                if self.function is FitFunction.QUADRATIC_NO_LINEAR:
                    a, c = p[:, :1], p[:, 1:]
                    matrix[fit_mask] = (a * freqs * freqs + c) / freqs
                else:
                    a, b, c = p[:, :1], p[:, 1:2], p[:, 2:]
                    matrix[fit_mask] = (
                        (a * freqs * freqs + b * freqs + c) / freqs
                    )
            return matrix
        models = []
        for name in names:
            try:
                models.append(self.operators[name])
            except KeyError:
                raise FittingError(
                    f"no performance model for operator {name!r}"
                ) from None
        if not batched_cold_path_enabled():
            for i, model in enumerate(models):
                if model.fit is None:
                    matrix[i, :] = model.constant_us
                else:
                    # One vectorised surrogate evaluation per operator row
                    # instead of a scalar call per (operator, freq) cell.
                    matrix[i, :] = model.fit.predict_time_us(freqs)
            return matrix
        if np.any(freqs <= 0):
            raise FittingError("frequency must be positive")
        func1_rows: list[int] = []
        func1_params: list[tuple[float, ...]] = []
        func2_rows: list[int] = []
        func2_params: list[tuple[float, ...]] = []
        for i, model in enumerate(models):
            fit = model.fit
            if fit is None:
                matrix[i, :] = model.constant_us
            elif fit.function is FitFunction.QUADRATIC_NO_LINEAR:
                func2_rows.append(i)
                func2_params.append(fit.params)
            elif fit.function is FitFunction.QUADRATIC:
                func1_rows.append(i)
                func1_params.append(fit.params)
            else:
                matrix[i, :] = fit.predict_time_us(freqs)
        if func2_rows:
            p = np.array(func2_params)
            a, c = p[:, :1], p[:, 1:]
            matrix[func2_rows] = (a * freqs * freqs + c) / freqs
        if func1_rows:
            p = np.array(func1_params)
            a, b, c = p[:, :1], p[:, 1:2], p[:, 2:]
            matrix[func1_rows] = (a * freqs * freqs + b * freqs + c) / freqs
        return matrix


def build_performance_model(
    reports: Sequence[ProfileReport],
    function: FitFunction = FitFunction.QUADRATIC_NO_LINEAR,
    fit_freqs_mhz: Sequence[float] | None = None,
    allow_missing: bool = False,
) -> WorkloadPerformanceModel:
    """Fit per-operator models from profiler reports at several frequencies.

    Args:
        reports: one report per frequency point for the same trace.
        function: which Sect. 4.3 surrogate to fit for compute operators.
        fit_freqs_mhz: which of the profiled frequencies to fit on;
            defaults to the paper's protocol (extremes, plus the middle for
            three-parameter functions).
        allow_missing: tolerate operators absent from some reports (a
            faulty profiler drops records — see :mod:`repro.npu.faults`).
            Names are unioned across all reports; an operator profiled at
            too few frequencies for ``function`` degrades to a constant
            predictor instead of aborting the model.

    Raises:
        ProfilingError: if the reports are inconsistent, or (unless
            ``allow_missing``) an operator is missing from some reports.
        FittingError: if too few frequencies are available.
    """
    ordered = merge_reports(reports)
    available = [report.freq_label_mhz for report in ordered]
    if fit_freqs_mhz is None:
        chosen = select_fit_frequencies(available, function)
    else:
        chosen = [float(f) for f in fit_freqs_mhz]
        missing = set(chosen) - set(available)
        if missing:
            raise ProfilingError(
                f"requested fit frequencies {sorted(missing)} not profiled "
                f"(available: {available})"
            )
    by_freq = {r.freq_label_mhz: r.durations_by_name() for r in ordered}
    if allow_missing:
        reference: dict[str, object] = {}
        for report in ordered:
            for name, op in report.first_by_name().items():
                reference.setdefault(name, op)
    else:
        reference = ordered[0].first_by_name()

    operators: dict[str, OperatorPerformanceModel] = {}
    for name, profiled in reference.items():
        durations = [by_freq[f].get(name) for f in chosen]
        if any(d is None for d in durations):
            if not allow_missing:
                raise ProfilingError(
                    f"operator {name!r} missing from some frequency reports"
                )
            operators[name] = _degraded_model(
                name, profiled, chosen, by_freq, function
            )
            continue
        mean_duration = float(np.mean([d for d in durations if d is not None]))
        if profiled.kind is OperatorKind.COMPUTE:
            try:
                fit = fit_performance(chosen, durations, function)
            except FittingError:
                # A non-converging curve_fit (it happens with Func. 3's
                # bounded exponential) degrades to a constant predictor
                # rather than aborting the whole workload model.
                fit = None
        else:
            fit = None
        operators[name] = OperatorPerformanceModel(
            name=name,
            op_type=profiled.op_type,
            kind=profiled.kind,
            fit=fit,
            constant_us=mean_duration,
        )
    return WorkloadPerformanceModel(
        trace_name=ordered[0].trace_name,
        function=function,
        fit_freqs_mhz=tuple(chosen),
        operators=operators,
    )


class _LazyOperatorMap(Mapping):
    """Per-name model mapping that materialises objects on first access.

    The batched cold path predicts through the stacked arrays attached
    to the workload model (the ``duration_matrix`` fast path) and never
    reads the per-name :class:`OperatorPerformanceModel` objects, so
    building thousands of them eagerly is pure constructor overhead.
    Iteration order, lookups and the materialised objects are identical
    to the eager dict the scalar builder produces.
    """

    __slots__ = (
        "_index",
        "_names",
        "_op_types",
        "_kinds",
        "_function",
        "_params",
        "_has_fit",
        "_means",
        "_dict",
    )

    def __init__(
        self, *, index, names, op_types, kinds, function, params, has_fit,
        means,
    ):
        self._index = index
        self._names = names
        self._op_types = op_types
        self._kinds = kinds
        self._function = function
        self._params = params
        self._has_fit = has_fit
        self._means = means
        self._dict: dict[str, OperatorPerformanceModel] | None = None

    def _materialise(self) -> dict[str, OperatorPerformanceModel]:
        built = self._dict
        if built is None:
            # Bypass dataclass __init__ (and the frozen __setattr__
            # dance): neither class has a __post_init__, and with
            # thousands of operators the ordinary constructors dominate.
            built = {}
            new_fit = PerformanceFit.__new__
            new_op = OperatorPerformanceModel.__new__
            set_dict = object.__setattr__
            function = self._function
            params_l = self._params.tolist()
            has_fit_l = self._has_fit.tolist()
            means_l = self._means.tolist()
            for i, name in enumerate(self._names):
                fit = None
                if has_fit_l[i]:
                    fit = new_fit(PerformanceFit)
                    set_dict(
                        fit,
                        "__dict__",
                        {"function": function, "params": tuple(params_l[i])},
                    )
                op = new_op(OperatorPerformanceModel)
                set_dict(
                    op,
                    "__dict__",
                    {
                        "name": name,
                        "op_type": self._op_types[i],
                        "kind": self._kinds[i],
                        "fit": fit,
                        "constant_us": means_l[i],
                    },
                )
                built[name] = op
            self._dict = built
        return built

    def __getitem__(self, name: str) -> OperatorPerformanceModel:
        return self._materialise()[name]

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # mappings are mutable-equality containers


def build_performance_model_batched(
    data,
    function: FitFunction = FitFunction.QUADRATIC_NO_LINEAR,
    fit_freqs_mhz: Sequence[float] | None = None,
) -> WorkloadPerformanceModel:
    """Batched equivalent of :func:`build_performance_model`.

    Consumes the per-operator duration matrix of one grid-profiling pass
    (:class:`repro.npu.gridprofile.GridProfileData`) instead of walking
    ``ProfileReport`` objects: per-name means are grouped ``bincount``
    sums, and all operators are fitted at once with the stacked fitters
    of :mod:`repro.perf.fitting`.  For Func. 2 the resulting parameters —
    and therefore every downstream prediction — are bit-identical to the
    scalar builder; Func. 1 replaces ``curve_fit`` with the exact linear
    least-squares solution (<= 1e-9 relative).  Func. 3 is not batched:
    callers keep the reference builder for it.

    Raises:
        FittingError: for Func. 3, or too few frequencies.
        ProfilingError: if a requested fit frequency was not profiled.
    """
    if function not in BATCH_FITTERS:
        raise FittingError(f"{function.value} has no batched fitter")
    available = [float(f) for f in data.freqs_mhz]
    if fit_freqs_mhz is None:
        chosen = select_fit_frequencies(available, function)
    else:
        chosen = [float(f) for f in fit_freqs_mhz]
        missing = set(chosen) - set(available)
        if missing:
            raise ProfilingError(
                f"requested fit frequencies {sorted(missing)} not profiled "
                f"(available: {available})"
            )
    n_names = data.name_count
    counts = np.bincount(data.name_ids, minlength=n_names)
    cols = [available.index(f) for f in chosen]
    # Per-name mean durations, accumulated in trace order exactly like
    # ``ProfileReport.durations_by_name`` (bincount sums sequentially).
    times = np.empty((n_names, len(chosen)))
    for out_col, col in enumerate(cols):
        sums = np.bincount(
            data.name_ids,
            weights=data.durations[:, col],
            minlength=n_names,
        )
        times[:, out_col] = sums / counts
    mean_durations = np.mean(times, axis=1)

    params, valid = BATCH_FITTERS[function](chosen, times)
    index = {name: i for i, name in enumerate(data.names)}
    compute_mask = np.fromiter(
        (kind is OperatorKind.COMPUTE for kind in data.kinds),
        dtype=bool,
        count=n_names,
    )
    has_fit = compute_mask & np.asarray(valid, dtype=bool)
    operators = _LazyOperatorMap(
        index=index,
        names=data.names,
        op_types=data.op_types,
        kinds=data.kinds,
        function=function,
        params=params,
        has_fit=has_fit,
        means=mean_durations,
    )
    model = WorkloadPerformanceModel(
        trace_name=data.trace_name,
        function=function,
        fit_freqs_mhz=tuple(chosen),
        operators=operators,
    )
    # Stacked per-name arrays for the duration_matrix fast path: the fit
    # parameters and constants already exist as arrays here, so attaching
    # them is free (the model is frozen — lazy attribute install).
    object.__setattr__(
        model,
        "_stacked",
        (index, has_fit, mean_durations, params),
    )
    return model


def _degraded_model(
    name: str,
    profiled,
    chosen: Sequence[float],
    by_freq: Mapping[float, Mapping[str, float]],
    function: FitFunction,
) -> OperatorPerformanceModel:
    """Best-effort predictor for an operator missing from some reports."""
    freqs = [f for f in chosen if by_freq[f].get(name) is not None]
    if not freqs:
        # Seen only at non-fit frequencies: use whatever was measured.
        freqs = sorted(f for f, table in by_freq.items() if name in table)
    durations = [by_freq[f][name] for f in freqs]
    fit = None
    if (
        profiled.kind is OperatorKind.COMPUTE
        and len(freqs) >= function.required_points
    ):
        try:
            fit = fit_performance(freqs, durations, function)
        except FittingError:
            fit = None
    return OperatorPerformanceModel(
        name=name,
        op_type=profiled.op_type,
        kind=profiled.kind,
        fit=fit,
        constant_us=float(np.mean(durations)),
    )


def patch_missing_operators(
    model: WorkloadPerformanceModel, report: ProfileReport
) -> WorkloadPerformanceModel:
    """Fill operators absent from ``model`` with constant predictors.

    Under profiler faults an operator can vanish from every fit report
    yet still appear in the baseline trace the strategy search stages
    over.  Patch such names with their baseline measured duration
    (frequency-insensitive), so scoring never hits an unknown operator.
    """
    durations = report.durations_by_name()
    patched: dict[str, OperatorPerformanceModel] = {}
    for name, profiled in report.first_by_name().items():
        if name in model.operators:
            continue
        patched[name] = OperatorPerformanceModel(
            name=name,
            op_type=profiled.op_type,
            kind=profiled.kind,
            fit=None,
            constant_us=durations[name],
        )
    if not patched:
        return model
    return WorkloadPerformanceModel(
        trace_name=model.trace_name,
        function=model.function,
        fit_freqs_mhz=model.fit_freqs_mhz,
        operators={**dict(model.operators), **patched},
    )
