"""Analytical cycle-count model of Sect. 4 — the white-box analysis.

For a compute operator, the cycle count as a function of core frequency is
the scenario closed form of Eqs. (5)-(8), built from the Ld/St transfer law
of Eq. (4).  This module packages that analysis for a single operator:

* evaluate ``Cycle(f)`` and ``T(f) = Cycle(f)/f`` at any frequency;
* expose the Ld/St saturation breakpoints ``f_s`` of Eq. (2);
* verify the Sect. 4.2.5 conclusion (convex, piecewise-linear, increasing
  slopes) numerically on a frequency grid.

The fitted models of Sect. 4.3 (see :mod:`repro.perf.fitting`) exist
*because* the breakpoints below are unobservable on real hardware: the PMU
reports no stall distribution, so this analytical form cannot be solved
directly and a convex surrogate is fitted instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.convexity import is_convex_samples
from repro.errors import WorkloadError
from repro.npu.memory import MemoryHierarchy, smooth_max
from repro.npu.operators import OperatorSpec
from repro.npu.timeline import BlockCosts, Scenario, closed_form_cycles


@dataclass(frozen=True)
class TransferLaw:
    """The ``Cycle(f) = max(a*f, c) + T0*f`` law for one transfer stream.

    The same smoothed saturation corner as the simulated hardware is used
    (see ``MemoryHierarchy.saturation_sharpness``), so the analytical model
    and the device agree exactly.
    """

    #: Wall time in us once the uncore saturates (``M / BW_uncore``).
    a_us: float
    #: Core-side port-limited cycles (``M / (C * core_num)``).
    c_cycles: float
    #: Fixed initiation overhead in us (becomes ``T0 * f`` cycles).
    overhead_us: float
    #: Corner sharpness of the saturation transition.
    sharpness: float = 6.0

    def cycles(self, freq_mhz: float) -> float:
        """Transfer cycles at ``freq_mhz`` — Eq. (4), smoothed corner."""
        if self.a_us == 0 and self.c_cycles == 0:
            return 0.0
        return smooth_max(self.a_us * freq_mhz, self.c_cycles, self.sharpness) + (
            self.overhead_us * freq_mhz
        )

    @property
    def saturation_mhz(self) -> float:
        """The breakpoint frequency ``f_s`` — Eq. (2) (inf if no transfer)."""
        if self.a_us == 0:
            return float("inf")
        return self.c_cycles / self.a_us


class OperatorCycleModel:
    """Closed-form ``Cycle(f)`` for one compute operator on one memory system."""

    def __init__(self, spec: OperatorSpec, memory: MemoryHierarchy) -> None:
        if not spec.is_compute or spec.compute is None:
            raise WorkloadError(
                f"cycle model requires a compute operator, got {spec.name!r}"
            )
        self._spec = spec
        compute = spec.compute
        a_ld, c_ld = memory.transfer_cycle_coefficients(
            compute.ld_bytes_per_block, compute.bandwidth_derate
        )
        a_st, c_st = memory.transfer_cycle_coefficients(
            compute.st_bytes_per_block, compute.bandwidth_derate
        )
        overhead = memory.transfer_overhead_us
        sharpness = memory.saturation_sharpness
        self._ld = TransferLaw(
            a_ld, c_ld, overhead if compute.ld_bytes_per_block else 0.0, sharpness
        )
        self._st = TransferLaw(
            a_st, c_st, overhead if compute.st_bytes_per_block else 0.0, sharpness
        )

    @property
    def spec(self) -> OperatorSpec:
        """The modelled operator."""
        return self._spec

    @property
    def scenario(self) -> Scenario:
        """The operator's timeline scenario."""
        assert self._spec.compute is not None
        return self._spec.compute.scenario

    @property
    def load_law(self) -> TransferLaw:
        """The move-in transfer law."""
        return self._ld

    @property
    def store_law(self) -> TransferLaw:
        """The move-out transfer law."""
        return self._st

    def breakpoints_mhz(self) -> list[float]:
        """Finite Ld/St saturation frequencies, sorted ascending.

        These are (a subset of) the slope-change points of the piecewise
        linear ``Cycle(f)``; the scenario ``max()`` terms can add more.
        """
        points = {
            law.saturation_mhz
            for law in (self._ld, self._st)
            if np.isfinite(law.saturation_mhz)
        }
        return sorted(points)

    def cycles(self, freq_mhz: float) -> float:
        """Total operator cycles at ``freq_mhz`` (pipeline + fixed overhead)."""
        compute = self._spec.compute
        assert compute is not None
        costs = BlockCosts(
            ld_cycles=self._ld.cycles(freq_mhz),
            st_cycles=self._st.cycles(freq_mhz),
            core_cycles=compute.core_cycles_per_block,
        )
        pipeline = closed_form_cycles(compute.scenario, compute.n_blocks, costs)
        return pipeline + compute.fixed_overhead_us * freq_mhz

    def time_us(self, freq_mhz: float) -> float:
        """Wall time ``T(f) = Cycle(f) / f``."""
        return self.cycles(freq_mhz) / freq_mhz

    def cycles_on_grid(self, freqs_mhz: Sequence[float]) -> np.ndarray:
        """Vector of cycle counts over a frequency grid."""
        return np.array([self.cycles(f) for f in freqs_mhz])

    def is_convex_on(self, freqs_mhz: Sequence[float]) -> bool:
        """Numerically verify Sect. 4.2.5's convexity conclusion on a grid."""
        return is_convex_samples(freqs_mhz, self.cycles_on_grid(freqs_mhz))

    def slope_profile(self, freqs_mhz: Sequence[float]) -> np.ndarray:
        """Finite-difference slopes of ``Cycle(f)`` between grid points.

        Sect. 4.2.5: with increasing frequency the slope of each linear
        segment gradually increases; this returns the observed slopes so
        callers can assert they are non-decreasing.
        """
        freqs = np.asarray(freqs_mhz, dtype=float)
        cycles = self.cycles_on_grid(freqs_mhz)
        return np.diff(cycles) / np.diff(freqs)
