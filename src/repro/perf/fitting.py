"""The three candidate fitting functions of Sect. 4.3.

Because the PMU cannot expose the breakpoints of the true piecewise-linear
cycle function, the paper fits a smooth convex surrogate to the operator's
measured time at a few frequencies:

* **Func. 1** — ``T(f) = (a f^2 + b f + c) / f``: three parameters, fitted
  with ``scipy.optimize.curve_fit`` (needs >= 3 frequency points).
* **Func. 2** — ``T(f) = (a f^2 + c) / f``: the linear term removed; the two
  parameters are *calculated directly* from two points, which is both the
  cheapest and (empirically, Fig. 15) essentially as accurate.  This is the
  function the paper deploys.
* **Func. 3** — ``T(f) = (a b^f + c) / f``: exponential; prone to overflow,
  so (like the paper) ``b`` is constrained to ``[0, 10]``, which compromises
  its accuracy — it is included to reproduce that negative result.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import OptimizeWarning, curve_fit

from repro.errors import FittingError


class FitFunction(enum.Enum):
    """The candidate surrogate functions of Sect. 4.3."""

    #: Func. 1: ``T(f) = (a f^2 + b f + c) / f``.
    QUADRATIC = "func1"
    #: Func. 2: ``T(f) = (a f^2 + c) / f`` — the deployed model.
    QUADRATIC_NO_LINEAR = "func2"
    #: Func. 3: ``T(f) = (a b^f + c) / f``.
    EXPONENTIAL = "func3"

    @property
    def required_points(self) -> int:
        """Minimum number of distinct frequency points needed to fit."""
        return 2 if self is FitFunction.QUADRATIC_NO_LINEAR else 3


@dataclass(frozen=True)
class PerformanceFit:
    """A fitted time-vs-frequency surrogate for one operator."""

    function: FitFunction
    params: tuple[float, ...]

    def predict_time_us(self, freq_mhz: float | np.ndarray) -> float | np.ndarray:
        """Predicted wall time at ``freq_mhz``."""
        f = np.asarray(freq_mhz, dtype=float)
        if np.any(f <= 0):
            raise FittingError("frequency must be positive")
        if self.function is FitFunction.QUADRATIC:
            a, b, c = self.params
            result = (a * f * f + b * f + c) / f
        elif self.function is FitFunction.QUADRATIC_NO_LINEAR:
            a, c = self.params
            result = (a * f * f + c) / f
        else:
            a, b, c = self.params
            result = (a * _safe_pow(b, f) + c) / f
        if np.isscalar(freq_mhz) or f.ndim == 0:
            return float(result)
        return result

    def predict_cycles(self, freq_mhz: float) -> float:
        """Predicted cycle count ``T(f) * f``."""
        return float(self.predict_time_us(freq_mhz)) * freq_mhz


def _safe_pow(base: float, exponent: np.ndarray) -> np.ndarray:
    """``base ** exponent`` with the overflow clamping the paper needed.

    The clamp keeps residuals finite for ``b`` far above 1 (where
    ``b ** 1800`` would overflow), at the price of a zero gradient in the
    clamped region — curve_fit then cannot recover a useful ``b``, which is
    the accuracy compromise Sect. 7.2 describes for Func. 3.
    """
    if base <= 0:
        return np.zeros_like(np.asarray(exponent, dtype=float))
    log_term = np.clip(np.asarray(exponent, dtype=float) * np.log(base), -80.0, 80.0)
    return np.exp(log_term)


def _validate_samples(
    freqs_mhz: Sequence[float], times_us: Sequence[float], needed: int
) -> tuple[np.ndarray, np.ndarray]:
    f = np.asarray(freqs_mhz, dtype=float)
    t = np.asarray(times_us, dtype=float)
    if f.shape != t.shape:
        raise FittingError(f"shape mismatch: {f.shape} vs {t.shape}")
    if np.unique(f).size < needed:
        raise FittingError(
            f"need >= {needed} distinct frequency points, got {np.unique(f).size}"
        )
    if np.any(f <= 0) or np.any(t <= 0):
        raise FittingError("frequencies and times must be positive")
    order = np.argsort(f)
    return f[order], t[order]


def fit_func2(
    freqs_mhz: Sequence[float], times_us: Sequence[float]
) -> PerformanceFit:
    """Fit Func. 2 — closed form, no iterative optimisation.

    With exactly two points the parameters are solved exactly (the paper's
    'directly calculate parameters a and c'); with more points a linear
    least-squares on the ``(f, 1/f)`` basis is used.
    """
    f, t = _validate_samples(freqs_mhz, times_us, needed=2)
    if f.size == 2:
        # Direct calculation (the paper's headline efficiency win over
        # curve_fit): multiply T(f) = a f + c/f through by f and solve the
        # resulting 2x2 system in closed form.
        f1, f2 = float(f[0]), float(f[1])
        t1, t2 = float(t[0]), float(t[1])
        a = (t2 * f2 - t1 * f1) / (f2 * f2 - f1 * f1)
        c = t1 * f1 - a * f1 * f1
    else:
        design = np.column_stack([f, 1.0 / f])
        (a, c), *_ = np.linalg.lstsq(design, t, rcond=None)
    return PerformanceFit(FitFunction.QUADRATIC_NO_LINEAR, (float(a), float(c)))


def fit_func1(
    freqs_mhz: Sequence[float], times_us: Sequence[float]
) -> PerformanceFit:
    """Fit Func. 1 with ``scipy.optimize.curve_fit`` (as in the paper)."""
    f, t = _validate_samples(freqs_mhz, times_us, needed=3)

    def model(freq, a, b, c):
        return (a * freq * freq + b * freq + c) / freq

    initial = (t[-1] / f[-1], 0.0, t[0] * f[0] / 2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", OptimizeWarning)
        try:
            params, _ = curve_fit(model, f, t, p0=initial, maxfev=20_000)
        except (RuntimeError, ValueError) as exc:
            raise FittingError(f"Func. 1 curve_fit failed: {exc}") from exc
    return PerformanceFit(FitFunction.QUADRATIC, tuple(float(p) for p in params))


def fit_func3(
    freqs_mhz: Sequence[float], times_us: Sequence[float]
) -> PerformanceFit:
    """Fit Func. 3 with ``b`` bounded to ``[0, 10]`` (Sect. 7.2's caveat)."""
    f, t = _validate_samples(freqs_mhz, times_us, needed=3)

    def model(freq, a, b, c):
        return (a * _safe_pow(b, freq) + c) / freq

    # With b constrained to [0, 10] (the paper's overflow workaround) the
    # optimiser frequently stalls far from the useful near-1.0 region: the
    # clamped exponential has a zero gradient there.  We try a naive
    # mid-bounds start first and fall back to a near-1.0 start, accepting
    # the first fit that at least reproduces its own samples — the
    # wrestling that made the paper reject Func. 3.
    bounds = ((-np.inf, 0.0, -np.inf), (np.inf, 10.0, np.inf))
    last_error: Exception | None = None
    best: tuple[tuple[float, ...], float] | None = None
    for b0 in (2.0, 1.0005):
        initial = (t[0] * f[0] / 2, b0, t[0] * f[0] / 2)
        with np.errstate(over="ignore", invalid="ignore"), (
            warnings.catch_warnings()
        ):
            warnings.simplefilter("ignore", OptimizeWarning)
            try:
                params, _ = curve_fit(
                    model, f, t, p0=initial, bounds=bounds, maxfev=1_500
                )
            except (RuntimeError, ValueError) as exc:
                last_error = exc
                continue
        candidate = tuple(float(p) for p in params)
        residual = float(np.max(np.abs(model(f, *candidate) - t) / t))
        if best is None or residual < best[1]:
            best = (candidate, residual)
        if residual < 0.2:
            break
    if best is None:
        raise FittingError(f"Func. 3 curve_fit failed: {last_error}")
    params_out, residual = best
    if residual > 2.0:
        # The stalled bounded exponential can be arbitrarily wrong; treat
        # a fit that cannot even reproduce its own samples as a failure.
        raise FittingError(
            f"Func. 3 fit rejected (self-residual {residual:.1f})"
        )
    return PerformanceFit(FitFunction.EXPONENTIAL, params_out)


def _validate_batch(
    freqs_mhz: Sequence[float], times_us: np.ndarray, needed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared argument handling for the stacked fitters.

    Returns ``(f, t, valid)`` with frequencies ascending (the scalar
    ``_validate_samples`` sort), times reordered to match, and ``valid``
    marking the rows the scalar fitter would have accepted — a row with a
    non-positive time is exactly the case where ``fit_performance`` raises
    :class:`FittingError` and the model builder degrades to a constant.
    """
    f = np.asarray(freqs_mhz, dtype=float)
    t = np.atleast_2d(np.asarray(times_us, dtype=float))
    if t.shape[1] != f.size:
        raise FittingError(f"shape mismatch: {f.shape} vs {t.shape}")
    if np.unique(f).size < needed or np.any(f <= 0):
        return f, t, np.zeros(t.shape[0], dtype=bool)
    order = np.argsort(f)
    valid = np.all(t > 0.0, axis=1)
    return f[order], t[:, order], valid


def fit_func2_batch(
    freqs_mhz: Sequence[float], times_us: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fit Func. 2 for many operators at once (stacked closed form).

    ``times_us`` is an ``(n_ops, n_freqs)`` matrix of measured durations,
    all rows sharing the same frequency points.  Two points solve the 2x2
    system in closed form per row; three or more become one multi-RHS
    ``lstsq`` on the ``(f, 1/f)`` basis.  Both reproduce the scalar
    :func:`fit_func2` parameters bit for bit (``lstsq`` factorises the
    design once and back-substitutes per column, which is the same
    floating-point work as one call per column).

    Returns:
        ``(params, valid)``: an ``(n_ops, 2)`` parameter matrix and the
        rows the scalar path would have fitted (non-positive times fall
        back to a constant predictor, like the scalar ``FittingError``).
    """
    f, t, valid = _validate_batch(freqs_mhz, times_us, needed=2)
    if not valid.any():
        return np.zeros((t.shape[0], 2)), valid
    if f.size == 2:
        f1, f2 = float(f[0]), float(f[1])
        t1, t2 = t[:, 0], t[:, 1]
        a = (t2 * f2 - t1 * f1) / (f2 * f2 - f1 * f1)
        c = t1 * f1 - a * f1 * f1
        params = np.column_stack([a, c])
    else:
        design = np.column_stack([f, 1.0 / f])
        solution, *_ = np.linalg.lstsq(design, t.T, rcond=None)
        params = solution.T
    return params, valid


def fit_func1_batch(
    freqs_mhz: Sequence[float], times_us: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fit Func. 1 for many operators at once via linear least squares.

    ``T(f) = (a f^2 + b f + c) / f = a f + b + c / f`` is *linear* in its
    parameters, so the iterative ``curve_fit`` of the scalar path is
    unnecessary: one multi-RHS ``lstsq`` on the ``(f, 1, 1/f)`` basis —
    against ``T`` directly, preserving the reference's least-squares
    weighting — solves every operator simultaneously.  With exactly three
    points both paths interpolate the samples exactly, so predictions
    agree with the ``curve_fit`` reference to ~1e-12 relative (the
    equivalence suite pins <= 1e-9).

    Returns:
        ``(params, valid)`` like :func:`fit_func2_batch`, with an
        ``(n_ops, 3)`` parameter matrix.
    """
    f, t, valid = _validate_batch(freqs_mhz, times_us, needed=3)
    if not valid.any():
        return np.zeros((t.shape[0], 3)), valid
    design = np.column_stack([f, np.ones_like(f), 1.0 / f])
    solution, *_ = np.linalg.lstsq(design, t.T, rcond=None)
    return solution.T, valid


_FITTERS = {
    FitFunction.QUADRATIC: fit_func1,
    FitFunction.QUADRATIC_NO_LINEAR: fit_func2,
    FitFunction.EXPONENTIAL: fit_func3,
}

#: Stacked fitters for the batched cold path (Func. 3 keeps scipy — it
#: reproduces a negative result and is off the hot path).
BATCH_FITTERS = {
    FitFunction.QUADRATIC: fit_func1_batch,
    FitFunction.QUADRATIC_NO_LINEAR: fit_func2_batch,
}


def fit_performance(
    freqs_mhz: Sequence[float],
    times_us: Sequence[float],
    function: FitFunction = FitFunction.QUADRATIC_NO_LINEAR,
) -> PerformanceFit:
    """Fit the chosen surrogate to measured (frequency, time) samples."""
    return _FITTERS[function](freqs_mhz, times_us)


def select_fit_frequencies(
    available_mhz: Sequence[float], function: FitFunction
) -> list[float]:
    """Choose which profiled frequencies to fit on (Sect. 4.3's protocol).

    Func. 2 uses the two extremes (the paper trains at 1000 and 1800 MHz);
    the three-parameter functions additionally use the middle point.
    """
    freqs = sorted(set(float(f) for f in available_mhz))
    if len(freqs) < function.required_points:
        raise FittingError(
            f"{function.value} needs {function.required_points} frequencies, "
            f"got {freqs}"
        )
    if function.required_points == 2:
        return [freqs[0], freqs[-1]]
    return [freqs[0], freqs[len(freqs) // 2], freqs[-1]]
