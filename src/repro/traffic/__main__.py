"""``python -m repro.traffic`` — the bench-traffic driver, directly."""

import sys

from repro.serve.cli import main

sys.exit(main(["bench-traffic", *sys.argv[1:]]))
