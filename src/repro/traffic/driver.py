"""The open-loop traffic driver: schedule in, ``BENCH_serve.json`` out.

Replays a :class:`~repro.traffic.patterns.TrafficSchedule` against an
:class:`~repro.serve.gateway.AsyncGateway` in bounded concurrency
windows.  Admission uses the schedule's *virtual* arrival clock (so
token-bucket shed decisions replay deterministically for a seed), while
per-request latency is measured on the real wall clock — the quantity a
deployment would page on.

The driver's hot path leans on ``submit_nowait``: a store hit resolves
synchronously as a plain function call, so a million mostly-warm
requests never allocate a million asyncio tasks; only misses and
coalesced waiters become awaitables, gathered at each window boundary.

After the drive, :func:`verify_byte_identity` replays a sample of the
workload population through a *fresh, serial* ``StrategyService`` and
compares strategy JSON byte-for-byte with what the gateway's store
holds — the PR-level determinism bar.
"""

from __future__ import annotations

import asyncio
import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.config import OptimizerConfig
from repro.errors import Overloaded, WorkloadError
from repro.serve.gateway import AsyncGateway, GatewayConfig
from repro.serve.service import ServeResult, StrategyService
from repro.serve.shards import ShardedStrategyStore
from repro.serve.store import StrategyStore
from repro.traffic.patterns import TrafficSchedule, build_schedule
from repro.workloads import oplib
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class TrafficConfig:
    """One synthetic traffic drive, end to end.

    All rates and times are in virtual seconds (see
    :mod:`repro.traffic.patterns`); ``window`` bounds the driver's
    in-flight concurrency per gather.
    """

    requests: int = 1_000_000
    workloads: int = 64
    zipf_s: float = 1.1
    sources: int = 8
    base_rate: float = 50_000.0
    #: ``None`` means horizon-scaled (see ``build_schedule``).
    diurnal_period_s: float | None = None
    diurnal_amplitude: float = 0.6
    burst_count: int = 12
    burst_magnitude: float = 4.0
    #: ``None`` means horizon-scaled (see ``build_schedule``).
    burst_duration_s: float | None = None
    seed: int = 0
    window: int = 4096
    #: Distinct workloads replayed serially for the byte-identity check.
    verify: int = 8
    #: Compute every workload's strategy once (serially, committed to
    #: the store) before the timed drive — measures steady-state serving
    #: with the cold-start transient excluded, the way the other perf
    #: harnesses treat warmup rounds.
    prewarm: bool = False
    #: Optimizer-pool worker processes behind the strategy service
    #: (0/1 = in-process serial, the historical behavior).
    workers: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise WorkloadError(f"requests must be >= 1: {self.requests}")
        if self.workloads < 1:
            raise WorkloadError(f"workloads must be >= 1: {self.workloads}")
        if self.window < 1:
            raise WorkloadError(f"window must be >= 1: {self.window}")
        if self.verify < 0:
            raise WorkloadError(f"verify must be >= 0: {self.verify}")
        if self.workers < 0:
            raise WorkloadError(f"workers must be >= 0: {self.workers}")


def build_workload_population(
    count: int, seed: int = 0, scale: float = 1.0
) -> list[Trace]:
    """``count`` distinct, small, deterministic workload traces.

    Each trace is a short transformer-ish block (matmul + elementwise +
    softmax) whose shapes are drawn from a seeded generator, so the
    population is cheap to optimize cold yet yields ``count`` distinct
    fingerprints; the same ``(count, seed)`` always reproduces the same
    traces — and therefore the same fingerprints and strategies.
    """
    if count < 1:
        raise WorkloadError(f"population must have >= 1 workloads: {count}")
    rng = np.random.default_rng(seed)
    traces: list[Trace] = []
    for index in range(count):
        m = int(rng.integers(8, 48)) * 32
        k = int(rng.integers(8, 48)) * 32
        n = int(rng.integers(8, 48)) * 32
        elements = int(rng.integers(64, 512)) * 4096
        repeats = int(rng.integers(1, 4))
        builder = TraceBuilder(
            f"traffic_w{index:04d}",
            f"synthetic serving workload {index} (seed {seed})",
        )
        block = [
            oplib.matmul(f"w{index}_matmul", m, k, n),
            oplib.elementwise(
                f"w{index}_gelu", "Gelu", elements, inputs=1,
                flops_per_element=4.0,
            ),
            oplib.softmax(f"w{index}_softmax", max(elements // 4, 4096)),
        ]
        for _ in range(repeats):
            for spec in block:
                builder.add(spec, gap_before_us=float(rng.integers(0, 20)))
        traces.append(builder.build())
    del scale  # reserved: population shapes are already tiny
    return traces


@dataclass
class TrafficReport:
    """Everything ``BENCH_serve.json`` records about one drive."""

    offered: int
    admitted: int
    shed: int
    shed_by_reason: dict[str, int]
    failed: int
    source_counts: dict[str, int]
    hit_rate: float
    shed_rate: float
    latency_us: dict[str, float]
    hit_latency_us: dict[str, float]
    queue_depth_max: int
    queue_depth_mean: float
    ga_runs: int
    wall_seconds: float
    throughput_rps: float
    #: Latency distribution of requests that ran their own GA
    #: (``source == "computed"``) — the cold-miss cost the pipeline
    #: optimisations target, separated from the cache-hit distribution
    #: so one doesn't mask the other.
    miss_latency_us: dict[str, float] = field(default_factory=dict)
    #: GA misses answered by the surrogate-assisted search.
    surrogate_runs: int = 0
    store_counters: dict[str, int | str] = field(default_factory=dict)
    byte_identical: bool | None = None
    verified_workloads: int = 0

    def rows(self) -> list[dict[str, float | int | str]]:
        """Headline rows for :func:`repro.core.report.format_table`."""
        return [
            {"metric": "offered", "value": self.offered},
            {"metric": "admitted", "value": self.admitted},
            {"metric": "shed", "value": self.shed},
            {"metric": "failed", "value": self.failed},
            {"metric": "hit_rate", "value": f"{self.hit_rate:.4%}"},
            {"metric": "shed_rate", "value": f"{self.shed_rate:.4%}"},
            {"metric": "p50_us", "value": f"{self.latency_us['p50']:.1f}"},
            {"metric": "p99_us", "value": f"{self.latency_us['p99']:.1f}"},
            {"metric": "max_us", "value": f"{self.latency_us['max']:.1f}"},
            {
                "metric": "hit_p50_us",
                "value": f"{self.hit_latency_us['p50']:.1f}",
            },
            {
                "metric": "hit_p99_us",
                "value": f"{self.hit_latency_us['p99']:.1f}",
            },
            {
                "metric": "miss_p50_us",
                "value": f"{self.miss_latency_us.get('p50', 0.0):.1f}",
            },
            {
                "metric": "miss_p99_us",
                "value": f"{self.miss_latency_us.get('p99', 0.0):.1f}",
            },
            {"metric": "surrogate_runs", "value": self.surrogate_runs},
            {"metric": "queue_depth_max", "value": self.queue_depth_max},
            {"metric": "ga_runs", "value": self.ga_runs},
            {"metric": "wall_seconds", "value": f"{self.wall_seconds:.2f}"},
            {
                "metric": "throughput_rps",
                "value": f"{self.throughput_rps:,.0f}",
            },
            {
                "metric": "byte_identical",
                "value": (
                    "unverified" if self.byte_identical is None
                    else str(self.byte_identical)
                ),
            },
        ]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "failed": self.failed,
            "source_counts": dict(self.source_counts),
            "hit_rate": self.hit_rate,
            "shed_rate": self.shed_rate,
            "latency_us": dict(self.latency_us),
            "hit_latency_us": dict(self.hit_latency_us),
            "miss_latency_us": dict(self.miss_latency_us),
            "surrogate_runs": self.surrogate_runs,
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": self.queue_depth_mean,
            "ga_runs": self.ga_runs,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "store_counters": dict(self.store_counters),
            "byte_identical": self.byte_identical,
            "verified_workloads": self.verified_workloads,
        }


def _percentiles(latencies_us: np.ndarray) -> dict[str, float]:
    """p50/p90/p99/p99.9/max in microseconds; all zeros when empty."""
    if latencies_us.size == 0:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0}
    p50, p90, p99, p999 = np.percentile(latencies_us, [50, 90, 99, 99.9])
    return {
        "p50": float(p50),
        "p90": float(p90),
        "p99": float(p99),
        "p999": float(p999),
        "max": float(latencies_us.max()),
    }


async def _drive(
    gateway: AsyncGateway,
    traces: Sequence[Trace],
    schedule: TrafficSchedule,
    window: int,
) -> dict:
    """Replay the schedule; returns raw per-request measurements."""
    total = len(schedule)
    latencies = np.zeros(total, dtype=np.float64)
    hit_mask = np.zeros(total, dtype=bool)
    computed_mask = np.zeros(total, dtype=bool)
    admitted_mask = np.zeros(total, dtype=bool)
    shed_by_reason: dict[str, int] = {}
    failed = 0
    depth_samples: list[int] = []
    # Plain-python views: indexing numpy scalars and formatting a source
    # label per request would dominate the hot loop at 1M requests.
    arrival = schedule.arrival_s.tolist()
    workload_idx = schedule.workload_idx.tolist()
    source_labels = [f"src-{s}" for s in range(int(schedule.source_idx.max()) + 1)]
    source_of = [source_labels[s] for s in schedule.source_idx.tolist()]
    submit = gateway.submit_nowait
    hit_tiers = ("memory", "hot", "disk")

    for window_start in range(0, total, window):
        window_stop = min(window_start + window, total)
        pending: list[tuple[int, object]] = []
        for i in range(window_start, window_stop):
            try:
                outcome = submit(
                    traces[workload_idx[i]],
                    source=source_of[i],
                    now=arrival[i],
                )
            except Overloaded as exc:
                shed_by_reason[exc.reason] = (
                    shed_by_reason.get(exc.reason, 0) + 1
                )
                continue
            if type(outcome) is ServeResult:
                latencies[i] = outcome.latency_seconds
                admitted_mask[i] = True
                hit_mask[i] = outcome.source in hit_tiers
                computed_mask[i] = outcome.source == "computed"
            else:
                pending.append((i, outcome))
        depth_samples.append(gateway.queue_depth)
        if pending:
            results = await asyncio.gather(
                *(awaitable for _, awaitable in pending),
                return_exceptions=True,
            )
            for (i, _), outcome in zip(pending, results):
                if isinstance(outcome, BaseException):
                    failed += 1
                    continue
                latencies[i] = outcome.latency_seconds
                admitted_mask[i] = True
                hit_mask[i] = outcome.source in hit_tiers
                computed_mask[i] = outcome.source == "computed"
    return {
        "latencies": latencies,
        "admitted_mask": admitted_mask,
        "hit_mask": hit_mask,
        "computed_mask": computed_mask,
        "shed_by_reason": shed_by_reason,
        "failed": failed,
        "depth_samples": depth_samples,
    }


def drive_traffic(
    config: TrafficConfig,
    optimizer_config: OptimizerConfig,
    gateway_config: GatewayConfig | None = None,
    store: ShardedStrategyStore | StrategyStore | None = None,
) -> TrafficReport:
    """Run one full synthetic drive and aggregate the report.

    ``store`` defaults to a fresh in-tree sharded store under
    ``.repro-traffic-store``; pass your own to reuse a warm store or to
    choose shard/hot-tier geometry.
    """
    if store is None:
        store = ShardedStrategyStore(Path(".repro-traffic-store"))
    gateway_config = gateway_config or GatewayConfig()
    traces = build_workload_population(config.workloads, seed=config.seed)
    rng = np.random.default_rng(config.seed)
    schedule = build_schedule(
        requests=config.requests,
        workloads=config.workloads,
        rng=rng,
        zipf_s=config.zipf_s,
        sources=config.sources,
        base_rate=config.base_rate,
        diurnal_period_s=config.diurnal_period_s,
        diurnal_amplitude=config.diurnal_amplitude,
        burst_count=config.burst_count,
        burst_magnitude=config.burst_magnitude,
        burst_duration_s=config.burst_duration_s,
    )

    async def _run() -> tuple[dict, AsyncGateway]:
        async with AsyncGateway(service, gateway_config) as gateway:
            raw = await _drive(gateway, traces, schedule, config.window)
            return raw, gateway

    with StrategyService(
        config=optimizer_config, store=store, workers=config.workers
    ) as service:
        # Pre-warm fingerprints so the first window is not a
        # canonicalization stampede (memoized on the trace objects).
        for trace in traces:
            service.fingerprint(trace)
        if config.prewarm:
            for trace in traces:
                service.request(trace)
        wall_start = time.perf_counter()
        raw, gateway = asyncio.run(_run())
        wall_seconds = time.perf_counter() - wall_start

    admitted_mask = raw["admitted_mask"]
    latencies_us = raw["latencies"][admitted_mask] * 1e6
    hit_latencies_us = (
        raw["latencies"][admitted_mask & raw["hit_mask"]] * 1e6
    )
    miss_latencies_us = (
        raw["latencies"][admitted_mask & raw["computed_mask"]] * 1e6
    )
    admitted = int(admitted_mask.sum())
    shed = int(sum(raw["shed_by_reason"].values()))
    depth_samples = raw["depth_samples"]
    stats = gateway.stats
    counters = (
        {row["counter"]: row["count"] for row in store.counter_rows()}
        if isinstance(store, ShardedStrategyStore)
        else {row["counter"]: row["count"] for row in store.counters.rows()}
    )
    return TrafficReport(
        offered=config.requests,
        admitted=admitted,
        shed=shed,
        shed_by_reason=raw["shed_by_reason"],
        failed=int(raw["failed"]),
        source_counts=stats.source_counts(),
        hit_rate=stats.hit_rate,
        shed_rate=stats.shed_rate,
        latency_us=_percentiles(latencies_us),
        hit_latency_us=_percentiles(hit_latencies_us),
        miss_latency_us=_percentiles(miss_latencies_us),
        surrogate_runs=stats.surrogate_runs,
        queue_depth_max=gateway.max_queue_depth_seen,
        queue_depth_mean=(
            float(np.mean(depth_samples)) if depth_samples else 0.0
        ),
        ga_runs=stats.ga_runs,
        wall_seconds=wall_seconds,
        throughput_rps=admitted / wall_seconds if wall_seconds > 0 else 0.0,
        store_counters=counters,
    )


def verify_byte_identity(
    config: TrafficConfig,
    optimizer_config: OptimizerConfig,
    store: ShardedStrategyStore | StrategyStore,
    tmp_root: Path,
) -> tuple[bool, int]:
    """Serially recompute a sample of the population and compare bytes.

    For each sampled workload, a fresh serial :class:`StrategyService`
    (its own store, no pool, no gateway) recomputes the strategy; the
    result must match the gateway-committed record byte for byte.
    """
    count = min(config.verify, config.workloads)
    if count == 0:
        return True, 0
    traces = build_workload_population(config.workloads, seed=config.seed)
    with StrategyService(
        config=optimizer_config,
        store=StrategyStore(Path(tmp_root) / "serial-reference"),
    ) as serial:
        for trace in traces[:count]:
            reference = serial.request(trace)
            fingerprint = serial.fingerprint(trace)
            served = store.get(
                fingerprint, serial.config_hash, serial.spec_hash
            )
            if served is None:
                return False, count
            if served.to_json() != reference.strategy.to_json():
                return False, count
    return True, count


def run_bench(
    config: TrafficConfig,
    optimizer_config: OptimizerConfig,
    gateway_config: GatewayConfig | None = None,
    store_root: Path | None = None,
    shards: int = 8,
    hot_slots: int = 512,
    output: Path | None = None,
) -> TrafficReport:
    """Drive, verify, and (optionally) write ``BENCH_serve.json``."""
    import tempfile

    own_root = store_root is None
    root = Path(tempfile.mkdtemp(prefix="repro-traffic-")) if own_root else (
        Path(store_root)
    )
    store = ShardedStrategyStore(
        root / "store", shards=shards, hot_slots=hot_slots
    )
    try:
        report = drive_traffic(
            config, optimizer_config, gateway_config, store=store
        )
        identical, verified = verify_byte_identity(
            config, optimizer_config, store, root
        )
        report.byte_identical = identical
        report.verified_workloads = verified
        if output is not None:
            document = {
                "meta": {
                    "requests": config.requests,
                    "workloads": config.workloads,
                    "zipf_s": config.zipf_s,
                    "sources": config.sources,
                    "base_rate": config.base_rate,
                    "diurnal_period_s": config.diurnal_period_s,
                    "diurnal_amplitude": config.diurnal_amplitude,
                    "burst_count": config.burst_count,
                    "burst_magnitude": config.burst_magnitude,
                    "seed": config.seed,
                    "window": config.window,
                    "prewarm": config.prewarm,
                    "shards": shards,
                    "hot_slots": hot_slots,
                    "gateway": {
                        "max_queue_depth": (
                            gateway_config or GatewayConfig()
                        ).max_queue_depth,
                        "dispatchers": (
                            gateway_config or GatewayConfig()
                        ).dispatchers,
                        "rate_per_source": (
                            gateway_config or GatewayConfig()
                        ).rate_per_source,
                    },
                    "ga_population": optimizer_config.ga.population_size,
                    "ga_iterations": optimizer_config.ga.iterations,
                    "surrogate": optimizer_config.surrogate.enabled,
                    "python": platform.python_version(),
                    "machine": platform.machine(),
                },
                "traffic": report.to_dict(),
            }
            Path(output).write_text(
                json.dumps(document, indent=1) + "\n", encoding="utf-8"
            )
        return report
    finally:
        store.close()
        if own_root:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
