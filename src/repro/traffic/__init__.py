"""Synthetic fleet traffic for the serving gateway (Sect. 8.1 at scale).

The paper amortizes one offline strategy search across a fleet; this
package supplies the *fleet side* of that argument — a seeded traffic
generator and driver that push a million-request workload through
:class:`~repro.serve.gateway.AsyncGateway` and measure what a production
deployment would: tail latency, hit rate, shed rate, queue depth.

* :mod:`repro.traffic.patterns` — the request schedule: heavy-tailed
  (Zipf) workload popularity, a diurnal load curve, seeded burst
  windows, and per-chunk Poisson arrivals, all as NumPy arrays from one
  ``numpy.random.Generator``; same seed, same schedule, byte for byte.
* :mod:`repro.traffic.driver` — the open-loop driver: builds a distinct
  workload population, replays the schedule against a gateway in
  bounded concurrency windows, collects latency/shed/queue statistics
  into a :class:`TrafficReport`, verifies byte-identity of served
  strategies against a serial :class:`~repro.serve.StrategyService`,
  and writes the checked-in ``BENCH_serve.json``.

Run it from the shell::

    python -m repro.serve bench-traffic --requests 1000000
    python -m repro.traffic --requests 20000        # same entry point
"""

from repro.traffic.driver import (
    TrafficConfig,
    TrafficReport,
    build_workload_population,
    drive_traffic,
    run_bench,
)
from repro.traffic.patterns import (
    TrafficSchedule,
    build_schedule,
    diurnal_multiplier,
    zipf_weights,
)

__all__ = [
    "TrafficConfig",
    "TrafficReport",
    "TrafficSchedule",
    "build_schedule",
    "build_workload_population",
    "diurnal_multiplier",
    "drive_traffic",
    "run_bench",
    "zipf_weights",
]
