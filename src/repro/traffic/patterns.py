"""Seeded request-schedule generation: Zipf popularity, diurnal load, bursts.

Everything here is a pure function of ``(config, seed)`` computed with
NumPy over one ``numpy.random.Generator`` — the schedule that drives a
million requests materialises in milliseconds and replays identically,
which is what makes the gateway's admission decisions (driven by the
schedule's *virtual* arrival clock) reproducible across runs.

The arrival process is an open-loop non-homogeneous Poisson stream:
the instantaneous rate is ``base_rate x diurnal(t) x burst(t)``, with

* ``diurnal(t)`` — a raised sinusoid with configurable amplitude and
  period, the classic day/night utilization curve;
* ``burst(t)`` — seeded burst windows (flash crowds) that multiply the
  rate for a short duration.

Arrivals are generated chunk-wise: within a chunk the rate is frozen at
its chunk-start value and inter-arrivals drawn exponentially, which
vectorizes cleanly and converges to the target curve for chunk sizes
small against the diurnal period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) probabilities over ranks ``1..n``.

    A bounded, explicit alternative to ``Generator.zipf`` (which samples
    an unbounded support): rank ``k`` gets weight ``k**-s``, normalized.
    ``s=0`` degenerates to uniform popularity.
    """
    if n < 1:
        raise WorkloadError(f"zipf support must have n >= 1 ranks: {n}")
    if s < 0:
        raise WorkloadError(f"zipf exponent must be >= 0: {s}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def diurnal_multiplier(
    t_seconds: np.ndarray | float,
    period_seconds: float,
    amplitude: float,
) -> np.ndarray | float:
    """The day/night load multiplier at time ``t``: ``1 + A·sin(2πt/T)``.

    Clipped below at 0.05 so the arrival process never stalls entirely
    even at ``amplitude >= 1``.
    """
    if period_seconds <= 0:
        raise WorkloadError(f"period must be > 0: {period_seconds}")
    value = 1.0 + amplitude * np.sin(
        2.0 * np.pi * np.asarray(t_seconds, dtype=np.float64) / period_seconds
    )
    return np.maximum(value, 0.05)


@dataclass(frozen=True)
class TrafficSchedule:
    """One materialised request schedule (parallel arrays, one row per
    request)."""

    #: Virtual arrival time of each request, seconds, non-decreasing.
    arrival_s: np.ndarray
    #: Workload-population index of each request (Zipf-distributed).
    workload_idx: np.ndarray
    #: Source identity of each request (uniform over sources).
    source_idx: np.ndarray
    #: ``[start, stop, multiplier]`` per burst window (diagnostics).
    bursts: np.ndarray

    def __len__(self) -> int:
        return int(self.arrival_s.shape[0])

    @property
    def duration_s(self) -> float:
        """Virtual span of the schedule."""
        return float(self.arrival_s[-1]) if len(self) else 0.0

    def burst_multiplier_at(self, t: np.ndarray) -> np.ndarray:
        """The burst multiplier at each time in ``t``.

        Overlapping bursts do not compound: the strongest active burst
        wins, so the multiplier is bounded by the largest configured
        magnitude no matter how windows land.
        """
        value = np.ones_like(np.asarray(t, dtype=np.float64))
        for start, stop, magnitude in self.bursts:
            value = np.where(
                (t >= start) & (t < stop), np.maximum(value, magnitude), value
            )
        return value


def build_schedule(
    requests: int,
    workloads: int,
    rng: np.random.Generator,
    zipf_s: float = 1.1,
    sources: int = 8,
    base_rate: float = 50_000.0,
    diurnal_period_s: float | None = None,
    diurnal_amplitude: float = 0.6,
    burst_count: int = 12,
    burst_magnitude: float = 4.0,
    burst_duration_s: float | None = None,
    chunk: int = 1024,
) -> TrafficSchedule:
    """Materialise a full schedule from one seeded generator.

    ``base_rate`` and every time-like knob are in *virtual* seconds —
    the driver replays arrivals through the gateway's explicit-``now``
    admission path, so the schedule's time base never has to match wall
    clock.  Time-like defaults scale with the schedule's horizon
    (``requests / base_rate``): the diurnal period defaults to half the
    horizon (one full day/night cycle over the drive) and each burst to
    2% of it, so a 20k-request smoke and a 1M-request drive exercise
    the same *shapes* of load.
    """
    if requests < 1:
        raise WorkloadError(f"requests must be >= 1: {requests}")
    if sources < 1:
        raise WorkloadError(f"sources must be >= 1: {sources}")
    if base_rate <= 0:
        raise WorkloadError(f"base_rate must be > 0: {base_rate}")
    if burst_magnitude < 1.0:
        raise WorkloadError(
            f"burst_magnitude must be >= 1: {burst_magnitude}"
        )

    # Burst windows over a horizon estimated from the mean rate; the
    # exact horizon only shapes *where* bursts land, so the estimate is
    # fine — and deterministic.
    horizon = requests / base_rate
    if diurnal_period_s is None:
        diurnal_period_s = horizon / 2.0
    if burst_duration_s is None:
        burst_duration_s = horizon * 0.02
    if burst_count > 0:
        starts = np.sort(rng.uniform(0.0, horizon, size=burst_count))
        bursts = np.column_stack(
            [
                starts,
                starts + burst_duration_s,
                np.full(burst_count, burst_magnitude),
            ]
        )
    else:
        bursts = np.empty((0, 3))

    def rate_at(t: float) -> float:
        rate = base_rate * float(
            diurnal_multiplier(t, diurnal_period_s, diurnal_amplitude)
        )
        burst = 1.0
        for start, stop, magnitude in bursts:
            if start <= t < stop and magnitude > burst:
                burst = magnitude
        return rate * burst

    # Chunked non-homogeneous Poisson arrivals.
    pieces: list[np.ndarray] = []
    t = 0.0
    remaining = requests
    while remaining > 0:
        size = min(chunk, remaining)
        gaps = rng.exponential(1.0 / rate_at(t), size=size)
        arrivals = t + np.cumsum(gaps)
        pieces.append(arrivals)
        t = float(arrivals[-1])
        remaining -= size
    arrival_s = np.concatenate(pieces)

    weights = zipf_weights(workloads, zipf_s)
    workload_idx = rng.choice(workloads, size=requests, p=weights).astype(
        np.int32
    )
    source_idx = rng.integers(0, sources, size=requests, dtype=np.int16)
    return TrafficSchedule(
        arrival_s=arrival_s,
        workload_idx=workload_idx,
        source_idx=source_idx,
        bursts=bursts,
    )
