"""The simulated NPU device: trace execution with energy integration.

:class:`NpuDevice` plays one workload iteration (a :class:`Trace`) under a
:class:`FrequencyTimeline`, producing per-operator records, a piecewise-
constant power trace (chunks), total energy, and the thermal trajectory.

Execution semantics:

* Operators run back-to-back, separated by their host-side gaps; during a
  gap the AICore idles at the current frequency.
* A frequency switch taking effect mid-operator splits the operator: the
  fraction of work completed so far carries over, and the remainder runs at
  the new frequency (progress-proportional, the standard rate-based model).
* Power within each constant-frequency chunk uses the chip temperature at
  the chunk start; the thermal state then advances with the exact RC
  solution over the chunk.  Chunks are short relative to the thermal time
  constant, so this splitting error is negligible.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.npu.execution import GroundTruthEvaluator, OperatorEvaluation
from repro.npu.setfreq import AnchoredFrequencyPlan, FrequencyTimeline
from repro.npu.spec import NpuSpec
from repro.npu.thermal import ThermalState
from repro.units import US_PER_S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.trace import Trace

#: Chunk op_index used for host-gap (idle) intervals.
IDLE_INDEX = -1


@dataclass(frozen=True)
class PowerChunk:
    """A constant-frequency, constant-operator interval of the execution."""

    start_us: float
    end_us: float
    freq_mhz: float
    aicore_watts: float
    soc_watts: float
    celsius: float
    #: Index into the trace entries, or :data:`IDLE_INDEX` for a host gap.
    op_index: int

    @property
    def duration_us(self) -> float:
        """Chunk length in microseconds."""
        return self.end_us - self.start_us


@dataclass(frozen=True)
class OperatorRecord:
    """Per-operator outcome of one execution."""

    index: int
    evaluation: OperatorEvaluation
    start_us: float
    end_us: float
    start_freq_mhz: float
    end_freq_mhz: float
    aicore_energy_j: float
    soc_energy_j: float

    @property
    def duration_us(self) -> float:
        """Measured wall time of the operator instance."""
        return self.end_us - self.start_us

    @property
    def straddled_switch(self) -> bool:
        """Whether a frequency change took effect mid-operator."""
        return self.start_freq_mhz != self.end_freq_mhz


@dataclass(frozen=True)
class ExecutionResult:
    """Complete outcome of playing one trace on the device."""

    trace_name: str
    duration_us: float
    aicore_energy_j: float
    soc_energy_j: float
    #: Tuple on the reference path; a lazily materialising sequence (same
    #: indexing/iteration/equality semantics) on the compiled fast path.
    records: Sequence[OperatorRecord]
    chunks: Sequence[PowerChunk]
    start_celsius: float
    end_celsius: float

    @property
    def aicore_avg_watts(self) -> float:
        """Average AICore power over the iteration."""
        return self.aicore_energy_j / (self.duration_us / US_PER_S)

    @property
    def soc_avg_watts(self) -> float:
        """Average SoC power over the iteration."""
        return self.soc_energy_j / (self.duration_us / US_PER_S)

    @property
    def performance(self) -> float:
        """Throughput metric: iterations per second."""
        return US_PER_S / self.duration_us

    def record_for(self, index: int) -> OperatorRecord:
        """The record of the ``index``-th trace entry."""
        return self.records[index]


class NpuDevice:
    """Executable model of one NPU, wrapping a ground-truth evaluator.

    Plain frequency plans (a wall-clock :class:`FrequencyTimeline`, or an
    :class:`AnchoredFrequencyPlan` with zero extra delay) execute on the
    compiled-trace fast path of :mod:`repro.npu.engine`, which is
    numerically equivalent to the reference loop below; stateful plans
    (fault-injecting, guarded, busy-controller) keep the reference loop.
    Pass ``engine=False`` — or use :func:`repro.npu.engine.reference_only`
    — to force the reference loop everywhere.
    """

    def __init__(
        self,
        npu: NpuSpec,
        evaluator: GroundTruthEvaluator | None = None,
        engine: bool = True,
    ) -> None:
        self._npu = npu
        self._evaluator = evaluator or GroundTruthEvaluator(npu)
        self._engine = None
        if engine:
            # Imported here: repro.npu.engine imports this module's
            # result/record/chunk types at import time.
            from repro.npu.engine import TraceEngine

            self._engine = TraceEngine(npu, self._evaluator)
        self._fast_path_runs = 0
        self._reference_runs = 0

    @property
    def npu(self) -> NpuSpec:
        """The hardware description."""
        return self._npu

    @property
    def evaluator(self) -> GroundTruthEvaluator:
        """The shared (memoised) ground-truth evaluator."""
        return self._evaluator

    @property
    def engine(self):
        """The compiled-trace engine, or None if disabled for this device."""
        return self._engine

    @property
    def fast_path_runs(self) -> int:
        """Iterations this device executed on the compiled fast path."""
        return self._fast_path_runs

    @property
    def reference_runs(self) -> int:
        """Iterations this device executed on the reference loop."""
        return self._reference_runs

    def run(
        self,
        trace: "Trace",
        timeline: FrequencyTimeline | AnchoredFrequencyPlan | None = None,
        initial_celsius: float | None = None,
    ) -> ExecutionResult:
        """Execute one iteration of ``trace`` under a frequency schedule.

        Args:
            trace: the operator sequence to play.
            timeline: a wall-clock :class:`FrequencyTimeline`, an
                operator-anchored :class:`AnchoredFrequencyPlan`, or any
                object with the same ``on_op_start`` / ``frequency_at`` /
                ``next_switch_after`` protocol (the fault-injecting and
                guarded plans of :mod:`repro.npu.faults` and
                :mod:`repro.dvfs.guard`); defaults to constant maximum
                frequency (the performance baseline).
            initial_celsius: starting chip temperature; defaults to ambient.
        """
        if timeline is None:
            timeline = FrequencyTimeline.constant(self._npu.max_frequency_mhz)
        if self._engine is not None and self._engine.active_for(timeline):
            self._fast_path_runs += 1
            return self._engine.execute(trace, timeline, initial_celsius)
        self._reference_runs += 1
        # Stateful plans expose reset(); wall-clock timelines do not.
        reset = getattr(timeline, "reset", None)
        if callable(reset):
            reset()
        thermal = ThermalState(self._npu.thermal, initial_celsius)
        start_celsius = thermal.celsius
        clock_us = 0.0
        records: list[OperatorRecord] = []
        chunks: list[PowerChunk] = []
        aicore_energy = 0.0
        soc_energy = 0.0

        previous_start_us = 0.0
        for index, entry in enumerate(trace.entries):
            idle_until = clock_us + entry.gap_before_us
            if entry.host_interval_us > 0:
                idle_until = max(
                    idle_until, previous_start_us + entry.host_interval_us
                )
            if idle_until > clock_us:
                gap_a, gap_s, clock_us = self._run_idle_span(
                    clock_us, idle_until - clock_us, timeline, thermal, chunks
                )
                aicore_energy += gap_a
                soc_energy += gap_s
            previous_start_us = clock_us
            timeline.on_op_start(index, clock_us)
            op_a, op_s, record, clock_us = self._run_operator(
                index, entry.spec, clock_us, timeline, thermal, chunks
            )
            aicore_energy += op_a
            soc_energy += op_s
            records.append(record)

        return ExecutionResult(
            trace_name=trace.name,
            duration_us=clock_us,
            aicore_energy_j=aicore_energy,
            soc_energy_j=soc_energy,
            records=tuple(records),
            chunks=tuple(chunks),
            start_celsius=start_celsius,
            end_celsius=thermal.celsius,
        )

    def run_stable(
        self,
        trace: "Trace",
        timeline: FrequencyTimeline | AnchoredFrequencyPlan | None = None,
        max_rounds: int = 6,
        tol_celsius: float = 0.3,
    ) -> ExecutionResult:
        """Execute ``trace`` at thermal equilibrium (the paper's
        'once stable training is achieved' measurement condition).

        Repeatedly runs the iteration, each time starting from the
        equilibrium temperature implied by the previous run's average SoC
        power, until the starting temperature stabilises.
        """
        initial = self._npu.thermal.ambient_celsius
        result = self.run(trace, timeline, initial_celsius=initial)
        for _ in range(max_rounds):
            equilibrium = self._npu.thermal.equilibrium_celsius(
                result.soc_avg_watts
            )
            if abs(equilibrium - result.start_celsius) <= tol_celsius:
                return result
            result = self.run(trace, timeline, initial_celsius=equilibrium)
        return result

    def run_iterations(
        self,
        trace: "Trace",
        timeline: FrequencyTimeline | AnchoredFrequencyPlan | None = None,
        iterations: int = 3,
        initial_celsius: float | None = None,
    ) -> list[ExecutionResult]:
        """Execute several consecutive iterations of the same trace.

        Long-lived AI workloads repeat the same iteration (paper Sect. 6),
        so one generated policy applies to every subsequent iteration: an
        operator-anchored plan resets at each iteration boundary, exactly
        as the DVFS Executor re-dispatches SetFreq per iteration.  The
        thermal state carries across iterations.

        Returns:
            One :class:`ExecutionResult` per iteration, in order.
        """
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1: {iterations}")
        results: list[ExecutionResult] = []
        celsius = initial_celsius
        for _ in range(iterations):
            result = self.run(trace, timeline, initial_celsius=celsius)
            results.append(result)
            celsius = result.end_celsius
        return results

    def run_idle(
        self,
        duration_us: float,
        freq_mhz: float,
        initial_celsius: float | None = None,
        steps: int = 60,
    ) -> list[PowerChunk]:
        """Idle the device (e.g. a cooldown after a test load).

        Returns per-step power chunks; used by telemetry to observe the
        gradual post-load power/temperature decay of Sect. 5.4.2.
        """
        if duration_us <= 0:
            raise ConfigurationError(f"duration must be positive: {duration_us}")
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1: {steps}")
        self._npu.frequencies.validate(freq_mhz)
        thermal = ThermalState(self._npu.thermal, initial_celsius)
        step_us = duration_us / steps
        chunks: list[PowerChunk] = []
        clock = 0.0
        for _ in range(steps):
            delta = thermal.delta_celsius
            aicore_w = self._evaluator.idle_aicore_power(freq_mhz, delta)
            soc_w = self._evaluator.idle_soc_power(freq_mhz, delta)
            chunks.append(
                PowerChunk(
                    start_us=clock,
                    end_us=clock + step_us,
                    freq_mhz=freq_mhz,
                    aicore_watts=aicore_w,
                    soc_watts=soc_w,
                    celsius=thermal.celsius,
                    op_index=IDLE_INDEX,
                )
            )
            thermal.advance(soc_w, step_us)
            clock += step_us
        return chunks

    def _run_idle_span(
        self,
        start_us: float,
        duration_us: float,
        timeline: FrequencyTimeline,
        thermal: ThermalState,
        chunks: list[PowerChunk],
    ) -> tuple[float, float, float]:
        """Idle from ``start_us`` for ``duration_us``, splitting on switches."""
        clock = start_us
        end = start_us + duration_us
        aicore_energy = 0.0
        soc_energy = 0.0
        while clock < end:
            freq = timeline.frequency_at(clock)
            nxt = timeline.next_switch_after(clock)
            chunk_end = min(end, nxt.time_us) if nxt is not None else end
            dt = chunk_end - clock
            delta = thermal.delta_celsius
            aicore_w = self._evaluator.idle_aicore_power(freq, delta)
            soc_w = self._evaluator.idle_soc_power(freq, delta)
            chunks.append(
                PowerChunk(clock, chunk_end, freq, aicore_w, soc_w,
                           thermal.celsius, IDLE_INDEX)
            )
            aicore_energy += aicore_w * dt / US_PER_S
            soc_energy += soc_w * dt / US_PER_S
            thermal.advance(soc_w, dt)
            clock = chunk_end
        return aicore_energy, soc_energy, end

    def _run_operator(
        self,
        index: int,
        spec,
        start_us: float,
        timeline: FrequencyTimeline,
        thermal: ThermalState,
        chunks: list[PowerChunk],
    ) -> tuple[float, float, OperatorRecord, float]:
        """Execute one operator, splitting across frequency switches."""
        clock = start_us
        progress = 0.0  # fraction of the operator's work completed
        aicore_energy = 0.0
        soc_energy = 0.0
        start_freq = timeline.frequency_at(clock)
        start_eval = self._evaluator.evaluate(spec, start_freq)
        freq = start_freq
        evaluation = start_eval
        while progress < 1.0:
            freq = timeline.frequency_at(clock)
            evaluation = self._evaluator.evaluate(spec, freq)
            remaining_us = (1.0 - progress) * evaluation.duration_us
            nxt = timeline.next_switch_after(clock)
            if nxt is not None and nxt.time_us < clock + remaining_us:
                chunk_end = nxt.time_us
                progress += (chunk_end - clock) / evaluation.duration_us
            else:
                chunk_end = clock + remaining_us
                progress = 1.0
            dt = chunk_end - clock
            delta = thermal.delta_celsius
            aicore_w = self._evaluator.aicore_power(evaluation, delta)
            soc_w = self._evaluator.soc_power(evaluation, delta)
            chunks.append(
                PowerChunk(clock, chunk_end, freq, aicore_w, soc_w,
                           thermal.celsius, index)
            )
            aicore_energy += aicore_w * dt / US_PER_S
            soc_energy += soc_w * dt / US_PER_S
            thermal.advance(soc_w, dt)
            clock = chunk_end
        record = OperatorRecord(
            index=index,
            evaluation=start_eval,
            start_us=start_us,
            end_us=clock,
            start_freq_mhz=start_freq,
            end_freq_mhz=freq,
            aicore_energy_j=aicore_energy,
            soc_energy_j=soc_energy,
        )
        return aicore_energy, soc_energy, record, clock
