"""The DVFS frequency grid of the simulated NPU.

The Ascend NPU in the paper supports core frequencies from 1000 MHz to
1800 MHz in 100 MHz increments (Sect. 5.1); the uncore domain is fixed
(Sect. 3).  :class:`FrequencyGrid` captures that grid and performs the
validation every other component relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FrequencyError


@dataclass(frozen=True)
class FrequencyGrid:
    """A discrete set of supported core frequencies, in MHz."""

    min_mhz: float = 1000.0
    max_mhz: float = 1800.0
    step_mhz: float = 100.0

    def __post_init__(self) -> None:
        if self.min_mhz <= 0 or self.max_mhz <= 0 or self.step_mhz <= 0:
            raise FrequencyError(
                f"grid bounds must be positive: {self.min_mhz}, "
                f"{self.max_mhz}, {self.step_mhz}"
            )
        if self.max_mhz < self.min_mhz:
            raise FrequencyError(
                f"max {self.max_mhz} MHz below min {self.min_mhz} MHz"
            )
        span = self.max_mhz - self.min_mhz
        steps = span / self.step_mhz
        if abs(steps - round(steps)) > 1e-9:
            raise FrequencyError(
                f"step {self.step_mhz} MHz does not evenly divide "
                f"[{self.min_mhz}, {self.max_mhz}]"
            )

    @property
    def points(self) -> tuple[float, ...]:
        """All supported frequencies, ascending, in MHz."""
        count = int(round((self.max_mhz - self.min_mhz) / self.step_mhz)) + 1
        return tuple(self.min_mhz + i * self.step_mhz for i in range(count))

    @property
    def count(self) -> int:
        """Number of supported frequency points."""
        return len(self.points)

    def validate(self, freq_mhz: float) -> float:
        """Return ``freq_mhz`` if it is a supported point, else raise.

        Raises:
            FrequencyError: if the frequency is not on the grid.
        """
        if not self.contains(freq_mhz):
            raise FrequencyError(
                f"{freq_mhz} MHz is not a supported frequency; "
                f"supported points are {self.points}"
            )
        return float(freq_mhz)

    def contains(self, freq_mhz: float) -> bool:
        """Whether ``freq_mhz`` lies exactly on the grid."""
        if freq_mhz < self.min_mhz - 1e-9 or freq_mhz > self.max_mhz + 1e-9:
            return False
        offset = (freq_mhz - self.min_mhz) / self.step_mhz
        return abs(offset - round(offset)) <= 1e-9

    def nearest(self, freq_mhz: float) -> float:
        """The supported frequency closest to ``freq_mhz`` (ties go up)."""
        pts = np.asarray(self.points)
        idx = int(np.argmin(np.abs(pts - freq_mhz)))
        # Prefer the higher point on exact ties to stay performance-safe.
        if (
            idx + 1 < pts.size
            and abs(pts[idx + 1] - freq_mhz) == abs(pts[idx] - freq_mhz)
        ):
            idx += 1
        return float(pts[idx])

    def index_of(self, freq_mhz: float) -> int:
        """Index of a supported frequency within :attr:`points`.

        Raises:
            FrequencyError: if the frequency is not on the grid.
        """
        self.validate(freq_mhz)
        return int(round((freq_mhz - self.min_mhz) / self.step_mhz))

    def clamp(self, freq_mhz: float) -> float:
        """Clamp to the grid range, then snap to the nearest point."""
        bounded = min(max(freq_mhz, self.min_mhz), self.max_mhz)
        return self.nearest(bounded)
