"""Deterministic, seedable fault injection for the NPU substrate.

The paper's runtime (Sect. 7.1) assumes a perfect control plane: every
``SetFreq`` lands within its documented latency, telemetry is always
fresh, and profiling traces are complete.  Production hardware violates
all three — slow or busy frequency controllers (Fig. 18's V100 case is
the benign version), sensor dropouts, truncated profiler traces, and
ambient-temperature excursions are routine.  This module injects those
adverse conditions into the simulated substrate so the guarded runtime
(:mod:`repro.dvfs.guard`) can be validated against an explicit fault
model, the approach assertion-based DVS verification takes on network
processors.

Everything is deterministic: a :class:`FaultInjector` draws from one
``numpy`` generator (usually ``RngFactory(seed).generator("faults")``),
each decision consumes a fixed number of draws regardless of outcome,
and every triggered fault is recorded in the injector's event log — the
same seed always yields the same fault schedule and the same log.

Fault models:

* **SetFreq command faults** (:class:`FaultyFrequencyPlan`) — dropped
  dispatches, duplicated effects, stochastic extra latency beyond
  ``SetFreqSpec.extra_delay_us``, and a stuck-busy controller whose hold
  window exceeds the depth-one request queue.
* **Telemetry faults** (:class:`FaultyPowerTelemetry`) — sample
  dropouts, stuck-at-last-value sensors, and transient spikes; the same
  fault classes corrupt the guard's frequency readbacks.
* **Profiler faults** (:class:`FaultyCannStyleProfiler`) — missing
  per-operator records and truncated traces.
* **Environment faults** — ambient-temperature steps that push the RC
  thermal model toward the throttle region (applied by the guarded
  executor via :meth:`FaultInjector.ambient_offset_celsius`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import FaultInjectionError, TelemetryError
from repro.npu.device import ExecutionResult, PowerChunk
from repro.npu.profiler import CannStyleProfiler, ProfileReport
from repro.npu.setfreq import (
    AnchoredFrequencyPlan,
    AnchoredSwitch,
    FrequencySwitch,
)
from repro.npu.spec import NpuSpec
from repro.npu.telemetry import (
    PowerMeasurement,
    PowerSample,
    PowerTelemetry,
)

_RATE_FIELDS = (
    "setfreq_drop_rate",
    "setfreq_duplicate_rate",
    "setfreq_delay_rate",
    "setfreq_stuck_rate",
    "telemetry_dropout_rate",
    "telemetry_stuck_rate",
    "telemetry_spike_rate",
    "profiler_drop_rate",
    "profiler_truncate_rate",
    "ambient_step_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-fault-class rates and magnitudes.  All-zero means healthy.

    Rates are per-decision probabilities in [0, 1]: per SetFreq dispatch,
    per telemetry sample/readback, per profiled operator record, per
    profiling pass (truncation), and per execution (ambient step).
    """

    # SetFreq command faults (per dispatch).
    setfreq_drop_rate: float = 0.0
    setfreq_duplicate_rate: float = 0.0
    setfreq_delay_rate: float = 0.0
    setfreq_delay_max_us: float = 10_000.0
    setfreq_stuck_rate: float = 0.0
    setfreq_stuck_hold_us: float = 30_000.0
    # Telemetry faults (per sample / per readback).
    telemetry_dropout_rate: float = 0.0
    telemetry_stuck_rate: float = 0.0
    telemetry_spike_rate: float = 0.0
    telemetry_spike_magnitude: float = 0.5
    # Profiler faults (per record / per report).
    profiler_drop_rate: float = 0.0
    profiler_truncate_rate: float = 0.0
    profiler_truncate_keep_fraction: float = 0.6
    # Environment faults (per execution).
    ambient_step_rate: float = 0.0
    ambient_step_celsius: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be in [0, 1]: {rate}"
                )
        for name in (
            "setfreq_delay_max_us",
            "setfreq_stuck_hold_us",
            "telemetry_spike_magnitude",
            "ambient_step_celsius",
        ):
            if getattr(self, name) < 0:
                raise FaultInjectionError(
                    f"{name} must be non-negative: {getattr(self, name)}"
                )
        if not 0.0 < self.profiler_truncate_keep_fraction <= 1.0:
            raise FaultInjectionError(
                f"profiler_truncate_keep_fraction must be in (0, 1]: "
                f"{self.profiler_truncate_keep_fraction}"
            )

    @classmethod
    def none(cls) -> "FaultConfig":
        """The healthy configuration (no faults)."""
        return cls()

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultConfig":
        """Every fault class at the same ``rate`` (the benchmark sweep).

        Magnitudes keep their defaults; the ambient step is enabled at
        40 °C whenever ``rate`` is non-zero.  Keyword overrides replace
        individual fields.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError(f"rate must be in [0, 1]: {rate}")
        settings: dict = {name: rate for name in _RATE_FIELDS}
        settings["ambient_step_celsius"] = 40.0 if rate > 0 else 0.0
        settings.update(overrides)
        return cls(**settings)

    @property
    def setfreq_active(self) -> bool:
        """Whether any SetFreq command fault can trigger."""
        return (
            self.setfreq_drop_rate > 0
            or self.setfreq_duplicate_rate > 0
            or self.setfreq_delay_rate > 0
            or self.setfreq_stuck_rate > 0
        )

    @property
    def telemetry_active(self) -> bool:
        """Whether any telemetry fault can trigger."""
        return (
            self.telemetry_dropout_rate > 0
            or self.telemetry_stuck_rate > 0
            or self.telemetry_spike_rate > 0
        )

    @property
    def profiler_active(self) -> bool:
        """Whether any profiler fault can trigger."""
        return self.profiler_drop_rate > 0 or self.profiler_truncate_rate > 0

    @property
    def environment_active(self) -> bool:
        """Whether an ambient-temperature step can trigger."""
        return self.ambient_step_rate > 0 and self.ambient_step_celsius > 0

    @property
    def any_active(self) -> bool:
        """Whether this configuration injects anything at all."""
        return (
            self.setfreq_active
            or self.telemetry_active
            or self.profiler_active
            or self.environment_active
        )


@dataclass(frozen=True)
class SetFreqFault:
    """The injected outcome of one SetFreq dispatch."""

    dropped: bool = False
    duplicated: bool = False
    extra_latency_us: float = 0.0
    busy_hold_us: float = 0.0

    @property
    def is_fault(self) -> bool:
        """Whether anything at all was injected."""
        return (
            self.dropped
            or self.duplicated
            or self.extra_latency_us > 0
            or self.busy_hold_us > 0
        )


@dataclass(frozen=True)
class InjectedFault:
    """One entry of the injection event log."""

    site: str
    kind: str
    time_us: float | None = None
    detail: str = ""

    def to_row(self) -> dict:
        """Table row for reports."""
        return {
            "site": self.site,
            "kind": self.kind,
            "time_us": "" if self.time_us is None else round(self.time_us, 1),
            "detail": self.detail,
        }


class FaultInjector:
    """Draws fault decisions from one seeded generator and logs them.

    Each decision method consumes a *fixed* number of random draws
    regardless of its outcome, so the stream every later decision sees
    depends only on the call sequence — replaying the same workload with
    the same seed reproduces the identical fault schedule and event log.
    """

    def __init__(self, config: FaultConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng
        self._events: list[InjectedFault] = []
        self._last_readback: float | None = None

    @classmethod
    def from_seed(
        cls, config: FaultConfig, seed: int, stream: str = "faults"
    ) -> "FaultInjector":
        """An injector on the standard ``repro.analysis.rng`` plumbing."""
        from repro.analysis.rng import RngFactory

        return cls(config, RngFactory(seed).generator(stream))

    @property
    def config(self) -> FaultConfig:
        """The fault rates and magnitudes in force."""
        return self._config

    @property
    def events(self) -> tuple[InjectedFault, ...]:
        """Every fault injected so far, in order."""
        return tuple(self._events)

    def record(
        self,
        site: str,
        kind: str,
        time_us: float | None = None,
        detail: str = "",
    ) -> None:
        """Append one entry to the injection log."""
        self._events.append(
            InjectedFault(site=site, kind=kind, time_us=time_us, detail=detail)
        )

    def clear_events(self) -> None:
        """Drop the accumulated injection log (the stream continues)."""
        self._events = []

    # -- SetFreq command faults ------------------------------------------

    def setfreq_fault(self, time_us: float) -> SetFreqFault:
        """Decide the fate of one SetFreq dispatch (5 draws, always)."""
        cfg = self._config
        draws = self._rng.random(4)
        delay_draw = float(self._rng.random())
        dropped = bool(draws[0] < cfg.setfreq_drop_rate)
        duplicated = bool(draws[1] < cfg.setfreq_duplicate_rate)
        extra = (
            cfg.setfreq_delay_max_us * delay_draw
            if draws[2] < cfg.setfreq_delay_rate
            else 0.0
        )
        hold = (
            cfg.setfreq_stuck_hold_us
            if draws[3] < cfg.setfreq_stuck_rate
            else 0.0
        )
        if dropped:
            self.record("setfreq", "dropped", time_us)
        if duplicated:
            self.record("setfreq", "duplicated", time_us)
        if extra > 0:
            self.record(
                "setfreq", "delayed", time_us, f"extra {extra:.0f} us"
            )
        if hold > 0:
            self.record(
                "setfreq", "stuck_busy", time_us, f"hold {hold:.0f} us"
            )
        return SetFreqFault(
            dropped=dropped,
            duplicated=duplicated,
            extra_latency_us=extra,
            busy_hold_us=hold,
        )

    # -- Telemetry faults -------------------------------------------------

    def telemetry_fault(self, time_us: float | None = None) -> str | None:
        """Decide one sensor reading's fate (3 draws, always).

        Returns ``"dropout"``, ``"stuck"``, ``"spike"`` or None.
        """
        cfg = self._config
        draws = self._rng.random(3)
        if draws[0] < cfg.telemetry_dropout_rate:
            self.record("telemetry", "dropout", time_us)
            return "dropout"
        if draws[1] < cfg.telemetry_stuck_rate:
            self.record("telemetry", "stuck", time_us)
            return "stuck"
        if draws[2] < cfg.telemetry_spike_rate:
            self.record("telemetry", "spike", time_us)
            return "spike"
        return None

    def spike_factor(self) -> float:
        """Multiplicative factor of a transient telemetry spike."""
        return 1.0 + self._config.telemetry_spike_magnitude

    def read_frequency(
        self, true_mhz: float, time_us: float | None = None
    ) -> float | None:
        """A possibly-corrupted frequency readback for the guard.

        Dropouts return None, a stuck sensor repeats the last reported
        value, and a spike scales the reading.
        """
        fault = self.telemetry_fault(time_us)
        if fault == "dropout":
            return None
        if fault == "stuck" and self._last_readback is not None:
            return self._last_readback
        value = true_mhz * self.spike_factor() if fault == "spike" else true_mhz
        self._last_readback = value
        return value

    # -- Profiler faults ---------------------------------------------------

    def profiler_drop(self) -> bool:
        """Whether one per-operator record goes missing (1 draw)."""
        return bool(self._rng.random() < self._config.profiler_drop_rate)

    def profiler_truncation(self, record_count: int) -> int | None:
        """How many records a truncated report keeps, or None (1 draw)."""
        cfg = self._config
        triggered = self._rng.random() < cfg.profiler_truncate_rate
        if not triggered or record_count <= 1:
            return None
        keep = max(1, int(record_count * cfg.profiler_truncate_keep_fraction))
        if keep >= record_count:
            return None
        self.record(
            "profiler",
            "truncated",
            detail=f"kept {keep} of {record_count} records",
        )
        return keep

    # -- Environment faults -------------------------------------------------

    def ambient_offset_celsius(self) -> float:
        """Ambient-temperature step for one execution (1 draw)."""
        cfg = self._config
        triggered = self._rng.random() < cfg.ambient_step_rate
        if not triggered or cfg.ambient_step_celsius <= 0:
            return 0.0
        self.record(
            "environment",
            "ambient_step",
            detail=f"+{cfg.ambient_step_celsius:.0f} C",
        )
        return cfg.ambient_step_celsius


class FaultyFrequencyPlan(AnchoredFrequencyPlan):
    """An anchored plan whose SetFreq controller misbehaves.

    Extends the depth-one-queue controller model of
    :class:`AnchoredFrequencyPlan` with injected command failures:

    * a **dropped** dispatch never reaches the controller;
    * a **duplicated** dispatch applies its effect twice (the second
      lands one redelivery gap later, occupying the controller);
    * a **delayed** dispatch takes stochastic extra latency beyond
      ``SetFreqSpec.extra_delay_us``;
    * a **stuck-busy** controller holds the dispatch for a window during
      which later requests pile into (and supersede each other in) the
      depth-one queue.
    """

    def __init__(
        self,
        initial_mhz: float,
        anchors: tuple[AnchoredSwitch, ...] | list[AnchoredSwitch],
        injector: FaultInjector,
        extra_delay_us: float = 0.0,
        duplicate_gap_us: float = 500.0,
    ) -> None:
        if injector is None:
            raise FaultInjectionError(
                "FaultyFrequencyPlan needs a FaultInjector"
            )
        if duplicate_gap_us <= 0:
            raise FaultInjectionError(
                f"duplicate_gap_us must be positive: {duplicate_gap_us}"
            )
        super().__init__(initial_mhz, anchors, extra_delay_us)
        self._injector = injector
        self._duplicate_gap = float(duplicate_gap_us)
        self._busy_until = 0.0

    @property
    def injector(self) -> FaultInjector:
        """The fault source this plan draws from."""
        return self._injector

    def reset(self) -> None:
        """Prepare the plan for a fresh execution."""
        super().reset()
        self._busy_until = 0.0

    def request(self, freq_mhz: float, time_us: float) -> None:
        """Dispatch one request through the faulty controller."""
        fault = self._injector.setfreq_fault(time_us)
        if fault.dropped:
            return
        if self._controller_busy(time_us):
            self._enqueue(freq_mhz)
            return
        effect = time_us + self._extra_delay + fault.extra_latency_us
        if fault.busy_hold_us > 0:
            self._busy_until = time_us + fault.busy_hold_us
            effect += fault.busy_hold_us
        self._schedule(freq_mhz, effect)
        if fault.duplicated:
            self._schedule(freq_mhz, effect + self._duplicate_gap)

    def _controller_busy(self, time_us: float) -> bool:
        return super()._controller_busy(time_us) or time_us < self._busy_until

    def _release_queued(self, completed_us: float) -> None:
        # A stuck controller keeps the held request waiting until the
        # hold window closes, even if an earlier switch completed.
        super()._release_queued(max(completed_us, self._busy_until))

    def frequency_at(self, time_us: float) -> float:
        freq = super().frequency_at(time_us)
        if (
            self._queued is not None
            and not self._pending
            and time_us >= self._busy_until
        ):
            # The stuck window closed with nothing in flight: issue the
            # held request (it completes one controller latency later).
            self._release_queued(self._busy_until)
            return super().frequency_at(time_us)
        return freq

    def next_switch_after(self, time_us: float) -> FrequencySwitch | None:
        nxt = super().next_switch_after(time_us)
        if self._queued is not None and not self._pending:
            release = self._busy_until + self._extra_delay
            if release > time_us and (nxt is None or release < nxt.time_us):
                return FrequencySwitch(time_us=release, freq_mhz=self._queued)
        return nxt


class FaultyPowerTelemetry(PowerTelemetry):
    """Power telemetry with injected sensor faults.

    Per-sample faults (dropout, stuck-at-last-value, spike) corrupt
    :meth:`sample_chunks`; aggregate measurements and per-operator power
    readings suffer transient spikes (a meter integrating over a window
    averages dropouts away, but a spike biases the whole window).
    """

    def __init__(
        self,
        npu: NpuSpec,
        rng: np.random.Generator,
        injector: FaultInjector,
    ) -> None:
        if injector is None:
            raise FaultInjectionError(
                "FaultyPowerTelemetry needs a FaultInjector"
            )
        super().__init__(npu, rng)
        self._injector = injector

    @property
    def injector(self) -> FaultInjector:
        """The fault source this instrument draws from."""
        return self._injector

    def sample_chunks(
        self, chunks: Sequence[PowerChunk], interval_us: float = 1000.0
    ) -> list[PowerSample]:
        """Sample with injected dropouts, stuck sensors, and spikes.

        Raises:
            TelemetryError: if every sample of the window was dropped.
        """
        samples = super().sample_chunks(chunks, interval_us)
        kept: list[PowerSample] = []
        last: PowerSample | None = None
        for sample in samples:
            fault = self._injector.telemetry_fault(sample.time_us)
            if fault == "dropout":
                continue
            if fault == "stuck" and last is not None:
                sample = PowerSample(
                    time_us=sample.time_us,
                    soc_watts=last.soc_watts,
                    aicore_watts=last.aicore_watts,
                    celsius=last.celsius,
                )
            elif fault == "spike":
                factor = self._injector.spike_factor()
                sample = replace(
                    sample,
                    soc_watts=sample.soc_watts * factor,
                    aicore_watts=sample.aicore_watts * factor,
                )
            kept.append(sample)
            last = sample
        if not kept:
            raise TelemetryError(
                "every telemetry sample of the window was dropped"
            )
        return kept

    def measure(self, result: ExecutionResult) -> PowerMeasurement:
        """Aggregate measurement, possibly hit by a transient spike."""
        return self._spiked(super().measure(result))

    def measure_chunks(
        self, chunks: Sequence[PowerChunk]
    ) -> PowerMeasurement:
        """Aggregate chunk measurement, possibly hit by a spike."""
        return self._spiked(super().measure_chunks(chunks))

    def measure_operator_power(
        self, result: ExecutionResult
    ) -> dict[str, tuple[float, float]]:
        """Per-operator readings; individual names may be spiked."""
        readings = super().measure_operator_power(result)
        corrupted: dict[str, tuple[float, float]] = {}
        for name, (aicore, soc) in readings.items():
            if self._injector.telemetry_fault() == "spike":
                factor = self._injector.spike_factor()
                aicore, soc = aicore * factor, soc * factor
            corrupted[name] = (aicore, soc)
        return corrupted

    def _spiked(self, measurement: PowerMeasurement) -> PowerMeasurement:
        if self._injector.telemetry_fault() != "spike":
            return measurement
        factor = self._injector.spike_factor()
        return replace(
            measurement,
            soc_avg_watts=measurement.soc_avg_watts * factor,
            aicore_avg_watts=measurement.aicore_avg_watts * factor,
        )


class FaultyCannStyleProfiler(CannStyleProfiler):
    """A profiler that loses per-operator records and truncates traces."""

    def __init__(
        self,
        npu: NpuSpec,
        rng: np.random.Generator,
        injector: FaultInjector,
    ) -> None:
        if injector is None:
            raise FaultInjectionError(
                "FaultyCannStyleProfiler needs a FaultInjector"
            )
        super().__init__(npu, rng)
        self._injector = injector

    @property
    def injector(self) -> FaultInjector:
        """The fault source this instrument draws from."""
        return self._injector

    def profile(self, result: ExecutionResult) -> ProfileReport:
        """Profile with injected record loss and trace truncation."""
        report = super().profile(result)
        operators = list(report.operators)
        kept = [op for op in operators if not self._injector.profiler_drop()]
        lost = len(operators) - len(kept)
        if lost:
            self._injector.record(
                "profiler",
                "records_dropped",
                detail=f"lost {lost} of {len(operators)} records",
            )
        keep_count = self._injector.profiler_truncation(len(kept))
        if keep_count is not None:
            kept = kept[:keep_count]
        if not kept:
            # A real profiler never hands back a fully empty trace for a
            # run that executed; keep the first record as the survivor.
            kept = operators[:1]
            self._injector.record("profiler", "all_records_lost")
        return replace(report, operators=tuple(kept))
