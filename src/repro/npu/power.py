"""Ground-truth power physics of the simulated chip (paper Sect. 5.2).

The chip's power follows Eq. (9)-(11):

    P = alpha*f*V^2  +  beta*f*V^2  +  gamma*AT*V  +  theta*V
        (load dynamic)  (idle dynamic)  (T-dep leakage) (T-indep leakage)

The AICore's load-dependent ``alpha`` is not a single constant here: it is
derived from per-pipe switching activity weighted by the pipe utilisation of
the running operator, which is why the paper must fit a separate ``alpha``
per operator.  The SoC adds three more components (Sect. 8.2: uncore power
averages ~80% of the SoC):

* core-coupled logic outside the AICore power rail (NoC, L2 interface),
  which also scales with ``f*V^2``;
* uncore idle power plus HBM/L2 dynamic power proportional to achieved
  bandwidth utilisation; and
* uncore leakage with its own temperature coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.npu.pipelines import ALL_PIPES, Pipe

#: Frequency scale: power coefficients are expressed per GHz.
_MHZ_PER_GHZ = 1000.0


def _default_pipe_alpha() -> dict[Pipe, float]:
    """Per-pipe load-power weights, in watts per (GHz * V^2) at 100% busy."""
    return {
        Pipe.CUBE: 23.5,
        Pipe.VECTOR: 13.0,
        Pipe.SCALAR: 5.0,
        Pipe.MTE1: 6.0,
        Pipe.MTE2: 15.0,
        Pipe.MTE3: 13.0,
    }


@dataclass(frozen=True)
class PowerSpec:
    """Constants of the ground-truth power model.

    AICore terms (Eq. 11, per the paper's notation):

    Attributes:
        pipe_alpha_w_per_ghz_v2: load-dependent weight of each pipe; the
            operator's effective ``alpha`` is the utilisation-weighted sum.
        beta_w_per_ghz_v2: AICore load-independent dynamic power (idle
            clock tree, memory refresh, power management).
        theta_w_per_v: AICore temperature-independent leakage.
        gamma_aicore_w_per_c_v: AICore leakage-temperature slope ``gamma``.

    SoC-side terms:

    Attributes:
        coupled_w_per_ghz_v2: core-domain logic outside the AICore rail.
        uncore_idle_watts: uncore power floor (HBM refresh, buses, AICPU).
        uncore_dynamic_fraction: fraction of the uncore floor that is
            clock-tree/dynamic power and would scale with an uncore
            frequency, if the hardware could tune one (Sect. 8.2).
        uncore_bandwidth_watts: additional uncore dynamic power at 100%
            bandwidth utilisation.
        gamma_uncore_w_per_c_v: uncore leakage-temperature slope.
        uncore_volts: fixed uncore supply voltage.
    """

    pipe_alpha_w_per_ghz_v2: Mapping[Pipe, float] = field(
        default_factory=_default_pipe_alpha
    )
    beta_w_per_ghz_v2: float = 2.2
    theta_w_per_v: float = 5.5
    gamma_aicore_w_per_c_v: float = 0.18
    coupled_w_per_ghz_v2: float = 6.0
    uncore_idle_watts: float = 170.0
    uncore_dynamic_fraction: float = 0.55
    uncore_bandwidth_watts: float = 40.0
    gamma_uncore_w_per_c_v: float = 0.35
    uncore_volts: float = 0.75

    def __post_init__(self) -> None:
        for pipe in ALL_PIPES:
            if pipe not in self.pipe_alpha_w_per_ghz_v2:
                raise ConfigurationError(f"missing alpha weight for pipe {pipe}")
            if self.pipe_alpha_w_per_ghz_v2[pipe] < 0:
                raise ConfigurationError(f"negative alpha weight for pipe {pipe}")
        for name in (
            "beta_w_per_ghz_v2",
            "theta_w_per_v",
            "gamma_aicore_w_per_c_v",
            "coupled_w_per_ghz_v2",
            "uncore_idle_watts",
            "uncore_bandwidth_watts",
            "gamma_uncore_w_per_c_v",
            "uncore_volts",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not 0.0 <= self.uncore_dynamic_fraction <= 1.0:
            raise ConfigurationError(
                f"uncore_dynamic_fraction must be in [0, 1]: "
                f"{self.uncore_dynamic_fraction}"
            )

    def effective_alpha(self, pipe_utilisation: Mapping[Pipe, float]) -> float:
        """Operator ``alpha``: utilisation-weighted sum of pipe weights."""
        alpha = 0.0
        for pipe, util in pipe_utilisation.items():
            if util < 0:
                raise ConfigurationError(f"negative utilisation for {pipe}: {util}")
            alpha += self.pipe_alpha_w_per_ghz_v2[pipe] * min(util, 1.0)
        return alpha

    def aicore_active_power(
        self, alpha: float, freq_mhz: float, volts: float
    ) -> float:
        """Load-dependent AICore power ``alpha * f * V^2``."""
        return alpha * (freq_mhz / _MHZ_PER_GHZ) * volts * volts

    def aicore_idle_power(self, freq_mhz: float, volts: float) -> float:
        """Load-independent AICore power ``beta*f*V^2 + theta*V`` — Eq. (12)."""
        f_ghz = freq_mhz / _MHZ_PER_GHZ
        return self.beta_w_per_ghz_v2 * f_ghz * volts * volts + (
            self.theta_w_per_v * volts
        )

    def aicore_thermal_power(self, delta_celsius: float, volts: float) -> float:
        """Temperature-dependent AICore leakage ``gamma * AT * V``."""
        return self.gamma_aicore_w_per_c_v * delta_celsius * volts

    def aicore_power(
        self,
        pipe_utilisation: Mapping[Pipe, float],
        freq_mhz: float,
        volts: float,
        delta_celsius: float,
    ) -> float:
        """Total AICore power for an operator — Eq. (11)."""
        alpha = self.effective_alpha(pipe_utilisation)
        return (
            self.aicore_active_power(alpha, freq_mhz, volts)
            + self.aicore_idle_power(freq_mhz, volts)
            + self.aicore_thermal_power(delta_celsius, volts)
        )

    def coupled_power(self, freq_mhz: float, volts: float) -> float:
        """Core-domain-but-not-AICore power (NoC, L2 interfaces)."""
        return self.coupled_w_per_ghz_v2 * (freq_mhz / _MHZ_PER_GHZ) * volts * volts

    def uncore_power(
        self, bandwidth_utilisation: float, delta_celsius: float
    ) -> float:
        """Uncore power: idle floor + bandwidth dynamic + leakage."""
        if bandwidth_utilisation < 0:
            raise ConfigurationError(
                f"bandwidth utilisation must be non-negative: {bandwidth_utilisation}"
            )
        util = min(bandwidth_utilisation, 1.0)
        return (
            self.uncore_idle_watts
            + self.uncore_bandwidth_watts * util
            + self.gamma_uncore_w_per_c_v * delta_celsius * self.uncore_volts
        )

    def soc_power(
        self,
        pipe_utilisation: Mapping[Pipe, float],
        freq_mhz: float,
        volts: float,
        delta_celsius: float,
        bandwidth_utilisation: float,
    ) -> float:
        """Total SoC power: AICore + coupled core logic + uncore."""
        return (
            self.aicore_power(pipe_utilisation, freq_mhz, volts, delta_celsius)
            + self.coupled_power(freq_mhz, volts)
            + self.uncore_power(bandwidth_utilisation, delta_celsius)
        )

    def thermal_feedback_gain(self, volts: float) -> float:
        """Watts of extra leakage per degree of temperature rise.

        Used to solve the power/temperature equilibrium analytically:
        ``dP/dAT = gamma_core * V + gamma_uncore * V_uncore``.
        """
        return (
            self.gamma_aicore_w_per_c_v * volts
            + self.gamma_uncore_w_per_c_v * self.uncore_volts
        )


def solve_equilibrium_power(
    base_power_watts: float,
    feedback_gain_w_per_c: float,
    celsius_per_watt: float,
) -> tuple[float, float]:
    """Solve ``P = P_base + g * AT`` with ``AT = k * P`` exactly.

    Returns:
        ``(power_watts, delta_celsius)`` at the fixed point.

    Raises:
        ConfigurationError: if the thermal feedback loop gain ``g * k``
            reaches 1 (thermal runaway; no equilibrium exists).
    """
    loop_gain = feedback_gain_w_per_c * celsius_per_watt
    if loop_gain >= 1.0:
        raise ConfigurationError(
            f"thermal runaway: loop gain {loop_gain:.3f} >= 1"
        )
    power = base_power_watts / (1.0 - loop_gain)
    return power, celsius_per_watt * power
