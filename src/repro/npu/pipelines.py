"""Execution pipelines of the simulated AICore.

The paper's classification (Sect. 6.1) keys off per-pipeline utilisation
ratios from the CANN profiler.  We model the same pipeline set the Ascend
toolchain exposes:

* **Core-domain pipes** — ``CUBE`` (matrix engine), ``VECTOR`` (SIMD engine),
  ``SCALAR`` (scalar unit), and ``MTE1`` (intra-AICore memory transfers,
  e.g. L0/L1 moves).  These are clocked by the core frequency domain.
* **Uncore-facing pipes** — ``MTE2`` carries loads (move-in from L2/HBM into
  the core) and ``MTE3`` carries stores (move-out).  Their throughput is
  bounded by both domains, per Eq. (1) of the paper.
"""

from __future__ import annotations

import enum


class Pipe(enum.Enum):
    """A hardware pipeline visible to the profiler."""

    CUBE = "cube"
    VECTOR = "vector"
    SCALAR = "scalar"
    MTE1 = "mte1"
    #: Load pipe: data move-in from the uncore domain (L2/HBM) to the core.
    MTE2 = "mte2"
    #: Store pipe: data move-out from the core to the uncore domain.
    MTE3 = "mte3"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Pipes clocked by (and busy only inside) the core frequency domain.
CORE_PIPES: frozenset[Pipe] = frozenset(
    {Pipe.CUBE, Pipe.VECTOR, Pipe.SCALAR, Pipe.MTE1}
)

#: Pipes whose throughput involves the uncore domain (Ld and St).
UNCORE_PIPES: frozenset[Pipe] = frozenset({Pipe.MTE2, Pipe.MTE3})

#: Every pipe, in a stable presentation order.
ALL_PIPES: tuple[Pipe, ...] = (
    Pipe.CUBE,
    Pipe.VECTOR,
    Pipe.SCALAR,
    Pipe.MTE1,
    Pipe.MTE2,
    Pipe.MTE3,
)


def is_core_pipe(pipe: Pipe) -> bool:
    """True for pipes fully inside the core frequency domain."""
    return pipe in CORE_PIPES


def is_uncore_pipe(pipe: Pipe) -> bool:
    """True for the load/store pipes crossing into the uncore domain."""
    return pipe in UNCORE_PIPES


def validate_core_mix(mix: dict[Pipe, float]) -> None:
    """Validate a core-computation pipe mix (fractions of core cycles).

    A mix assigns each core-domain pipe the fraction of a block's core
    cycles it occupies; fractions must be non-negative and sum to 1.

    Raises:
        ValueError: on uncore pipes, negative fractions, or a bad sum.
    """
    if not mix:
        raise ValueError("core pipe mix must not be empty")
    for pipe, fraction in mix.items():
        if pipe not in CORE_PIPES:
            raise ValueError(f"{pipe} is not a core-domain pipe")
        if fraction < 0:
            raise ValueError(f"negative fraction {fraction} for {pipe}")
    total = sum(mix.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"core pipe mix must sum to 1, got {total}")
