"""Ground-truth evaluation of operators on the simulated NPU.

The :class:`GroundTruthEvaluator` computes, for an operator spec at a core
frequency, the exact duration, cycle count, pipe utilisation, and bandwidth
utilisation implied by the timeline model of Sect. 4.2 — the quantities a
real chip would physically exhibit.  Everything downstream (profiler,
telemetry, device energy integration) observes these values, possibly with
measurement noise.

Evaluations are memoised per ``(operator spec, frequency)`` because traces
dispatch the same spec many times.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.npu.pipelines import Pipe
from repro.npu.spec import NpuSpec
from repro.npu.timeline import (
    BlockCosts,
    Timeline,
    analytical_busy_stall,
    build_timeline,
    closed_form_cycles,
)
from repro.npu.operators import OperatorKind, OperatorSpec

#: Uncore bandwidth utilisation attributed to non-compute operators:
#: communication moves tensors through HBM/links, AICPU barely touches it.
_NONCOMPUTE_BANDWIDTH_UTILISATION: dict[OperatorKind, float] = {
    OperatorKind.AICPU: 0.05,
    OperatorKind.COMMUNICATION: 0.25,
    OperatorKind.IDLE: 0.0,
}


@dataclass(frozen=True)
class OperatorEvaluation:
    """Exact execution characteristics of one operator at one frequency.

    Attributes:
        spec: the evaluated operator.
        freq_mhz: the core frequency of the evaluation.
        duration_us: total wall time including fixed overhead.
        pipeline_cycles: cycles spent in the Sect. 4.2 timeline.
        overhead_cycles: fixed pre/post-processing expressed in cycles.
        stall_cycles: cycles with no core pipe computing.
        utilisation: per-pipe busy fraction of the full duration.
        bandwidth_utilisation: achieved fraction of peak uncore bandwidth.
        alpha_effective: the operator's ground-truth load-power coefficient
            (utilisation-weighted pipe activity) at this frequency.
    """

    spec: OperatorSpec
    freq_mhz: float
    duration_us: float
    pipeline_cycles: float
    overhead_cycles: float
    stall_cycles: float
    utilisation: Mapping[Pipe, float]
    bandwidth_utilisation: float
    alpha_effective: float

    @property
    def total_cycles(self) -> float:
        """All core-domain cycles elapsed during the operator."""
        return self.pipeline_cycles + self.overhead_cycles

    def max_utilisation(self) -> tuple[Pipe | None, float]:
        """The busiest pipe and its ratio (``(None, 0.0)`` if none busy)."""
        if not self.utilisation:
            return None, 0.0
        pipe = max(self.utilisation, key=lambda p: self.utilisation[p])
        return pipe, self.utilisation[pipe]

    def utilisation_sum(self) -> float:
        """Sum of all pipe ratios (Sect. 6.1's no-pipeline-bound signal)."""
        return float(sum(self.utilisation.values()))


#: Default bound on the evaluator memo.  A full profiler sweep over the
#: stock grid touches a few thousand distinct (character, frequency) pairs,
#: so this keeps every realistic workload fully resident while capping
#: memory for long-lived fleet services evaluating many unrelated traces.
DEFAULT_EVALUATOR_CACHE_SIZE = 65536


class GroundTruthEvaluator:
    """Memoised exact operator evaluation against one NPU spec.

    The memo is a size-capped LRU: when full, the least recently used
    ``(character, frequency)`` entry is evicted.  Hit/miss counters are
    exposed via :meth:`cache_info`.
    """

    def __init__(
        self,
        npu: NpuSpec,
        cache_size: int = DEFAULT_EVALUATOR_CACHE_SIZE,
    ) -> None:
        if cache_size <= 0:
            raise ConfigurationError(
                f"evaluator cache size must be positive: {cache_size}"
            )
        self._npu = npu
        # Keyed by the operator's ComputeCharacter (not its spec): traces
        # contain thousands of uniquely named operators that share identical
        # characters across layers, and everything here depends only on the
        # character.
        self._cache: OrderedDict[tuple[object, float], OperatorEvaluation] = (
            OrderedDict()
        )
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0

    @property
    def npu(self) -> NpuSpec:
        """The hardware description evaluations are computed against."""
        return self._npu

    @property
    def cache_hits(self) -> int:
        """Number of :meth:`evaluate` calls served from the memo."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Number of :meth:`evaluate` calls that computed fresh."""
        return self._misses

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size/capacity counters of the evaluation memo."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "capacity": self._cache_size,
        }

    def clear_cache(self) -> None:
        """Drop all memoised evaluations and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def evaluate(self, spec: OperatorSpec, freq_mhz: float) -> OperatorEvaluation:
        """Exact characteristics of ``spec`` at a validated grid frequency."""
        freq_mhz = self._npu.frequencies.validate(freq_mhz)
        if spec.is_compute:
            key = (spec.compute, freq_mhz)
        else:
            key = ((spec.kind, spec.fixed_duration_us), freq_mhz)
        cached = self._cache.get(key)
        if cached is None:
            self._misses += 1
            cached = self._evaluate_uncached(spec, freq_mhz)
            self._cache[key] = cached
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            return cached
        self._hits += 1
        self._cache.move_to_end(key)
        if cached.spec is spec or cached.spec == spec:
            return cached
        # Same character under a different name: reuse the numbers.
        return OperatorEvaluation(
            spec=spec,
            freq_mhz=cached.freq_mhz,
            duration_us=cached.duration_us,
            pipeline_cycles=cached.pipeline_cycles,
            overhead_cycles=cached.overhead_cycles,
            stall_cycles=cached.stall_cycles,
            utilisation=cached.utilisation,
            bandwidth_utilisation=cached.bandwidth_utilisation,
            alpha_effective=cached.alpha_effective,
        )

    def duration_us(self, spec: OperatorSpec, freq_mhz: float) -> float:
        """Wall time of ``spec`` at ``freq_mhz``."""
        return self.evaluate(spec, freq_mhz).duration_us

    def timeline(self, spec: OperatorSpec, freq_mhz: float) -> Timeline:
        """The explicit Sect. 4.2 schedule (compute operators only)."""
        if not spec.is_compute or spec.compute is None:
            raise ConfigurationError(
                f"operator {spec.name!r} is not a compute operator"
            )
        freq_mhz = self._npu.frequencies.validate(freq_mhz)
        costs = self._block_costs(spec, freq_mhz)
        return build_timeline(
            spec.compute.scenario, spec.compute.n_blocks, costs,
            spec.compute.core_mix_dict,
        )

    def aicore_power(
        self, evaluation: OperatorEvaluation, delta_celsius: float
    ) -> float:
        """AICore power while this operator runs, at a temperature rise."""
        volts = self._npu.volts_at(evaluation.freq_mhz)
        power = self._npu.power
        return (
            power.aicore_active_power(
                evaluation.alpha_effective, evaluation.freq_mhz, volts
            )
            + power.aicore_idle_power(evaluation.freq_mhz, volts)
            + power.aicore_thermal_power(delta_celsius, volts)
        )

    def soc_power(
        self, evaluation: OperatorEvaluation, delta_celsius: float
    ) -> float:
        """SoC power while this operator runs, at a temperature rise."""
        volts = self._npu.volts_at(evaluation.freq_mhz)
        power = self._npu.power
        return (
            self.aicore_power(evaluation, delta_celsius)
            + power.coupled_power(evaluation.freq_mhz, volts)
            + power.uncore_power(evaluation.bandwidth_utilisation, delta_celsius)
        )

    def idle_aicore_power(self, freq_mhz: float, delta_celsius: float) -> float:
        """AICore power with no operator running."""
        volts = self._npu.volts_at(freq_mhz)
        power = self._npu.power
        return power.aicore_idle_power(freq_mhz, volts) + (
            power.aicore_thermal_power(delta_celsius, volts)
        )

    def idle_soc_power(self, freq_mhz: float, delta_celsius: float) -> float:
        """SoC power with no operator running."""
        volts = self._npu.volts_at(freq_mhz)
        power = self._npu.power
        return (
            self.idle_aicore_power(freq_mhz, delta_celsius)
            + power.coupled_power(freq_mhz, volts)
            + power.uncore_power(0.0, delta_celsius)
        )

    def _block_costs(self, spec: OperatorSpec, freq_mhz: float) -> BlockCosts:
        compute = spec.compute
        assert compute is not None
        memory = self._npu.memory
        return BlockCosts(
            ld_cycles=memory.transfer_cycles(
                compute.ld_bytes_per_block, freq_mhz, compute.bandwidth_derate
            ),
            st_cycles=memory.transfer_cycles(
                compute.st_bytes_per_block, freq_mhz, compute.bandwidth_derate
            ),
            core_cycles=compute.core_cycles_per_block,
        )

    def _evaluate_uncached(
        self, spec: OperatorSpec, freq_mhz: float
    ) -> OperatorEvaluation:
        if not spec.is_compute or spec.compute is None:
            return self._evaluate_noncompute(spec, freq_mhz)
        compute = spec.compute
        costs = self._block_costs(spec, freq_mhz)
        # The closed forms (totals per Eqs. (5)-(8); per-pipe busy/stall
        # per the disjointness argument of analytical_busy_stall) match
        # the explicit build_timeline schedule; the hot path skips the
        # per-block segment construction.
        pipeline_cycles = closed_form_cycles(
            compute.scenario, compute.n_blocks, costs
        )
        busy, stall_cycles = analytical_busy_stall(
            compute.scenario, compute.n_blocks, costs, compute.core_mix_dict
        )
        overhead_cycles = compute.fixed_overhead_us * freq_mhz
        total_cycles = pipeline_cycles + overhead_cycles
        duration_us = total_cycles / freq_mhz
        utilisation = {
            pipe: cycles / total_cycles for pipe, cycles in busy.items()
        }
        moved_bytes = spec.total_ld_bytes() + spec.total_st_bytes()
        peak_bw = self._npu.memory.uncore_bandwidth(derate=1.0)
        bandwidth_utilisation = min(
            1.0, (moved_bytes / duration_us) / peak_bw
        )
        alpha = self._npu.power.effective_alpha(utilisation)
        return OperatorEvaluation(
            spec=spec,
            freq_mhz=freq_mhz,
            duration_us=duration_us,
            pipeline_cycles=pipeline_cycles,
            overhead_cycles=overhead_cycles,
            stall_cycles=stall_cycles,
            utilisation=utilisation,
            bandwidth_utilisation=bandwidth_utilisation,
            alpha_effective=alpha,
        )

    def _evaluate_noncompute(
        self, spec: OperatorSpec, freq_mhz: float
    ) -> OperatorEvaluation:
        duration_us = spec.fixed_duration_us
        bandwidth = _NONCOMPUTE_BANDWIDTH_UTILISATION[spec.kind]
        return OperatorEvaluation(
            spec=spec,
            freq_mhz=freq_mhz,
            duration_us=duration_us,
            pipeline_cycles=0.0,
            overhead_cycles=duration_us * freq_mhz,
            stall_cycles=duration_us * freq_mhz,
            utilisation={},
            bandwidth_utilisation=bandwidth,
            alpha_effective=0.0,
        )
