"""Top-level hardware description of the simulated NPU.

:class:`NpuSpec` bundles the frequency grid, the voltage curve, the memory
hierarchy, the power constants, the thermal constants, and the SetFreq
characteristics into one immutable object that the device, the profiler and
every experiment share.  :func:`default_npu_spec` returns the calibrated
configuration used throughout the reproduction (constants documented in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.npu.frequency import FrequencyGrid
from repro.npu.memory import MemoryHierarchy
from repro.npu.power import PowerSpec
from repro.npu.thermal import ThermalSpec
from repro.npu.voltage import VoltageCurve
from repro.units import ms_to_us


@dataclass(frozen=True)
class SetFreqSpec:
    """Characteristics of the fast frequency-setting operator (Sect. 7.1).

    Attributes:
        latency_us: time from dispatching SetFreq to the new frequency
            taking effect (1 ms on the Ascend NPU).
        extra_delay_us: additional delay applied on top of the base
            latency; Fig. 18 simulates the NVIDIA V100's ~15 ms control
            delay by adding 14 ms here.
    """

    latency_us: float = ms_to_us(1.0)
    extra_delay_us: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.extra_delay_us < 0:
            raise ConfigurationError("SetFreq delays must be non-negative")

    @property
    def total_latency_us(self) -> float:
        """Effective dispatch-to-effect latency."""
        return self.latency_us + self.extra_delay_us


@dataclass(frozen=True)
class NoiseSpec:
    """Measurement-noise levels of the software 'instruments'.

    These model the jitter of the CANN profiler and lpmi_tool readings;
    they are multiplicative sigmas (0.015 = 1.5%).  Set all to zero for an
    idealised noise-free instrument (useful in tests).
    """

    duration_sigma: float = 0.01
    power_sigma: float = 0.03
    temperature_sigma_celsius: float = 0.4
    utilisation_sigma: float = 0.01

    def __post_init__(self) -> None:
        for name in (
            "duration_sigma",
            "power_sigma",
            "temperature_sigma_celsius",
            "utilisation_sigma",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class NpuSpec:
    """Complete description of one simulated NPU model."""

    name: str = "ascend-sim-910"
    frequencies: FrequencyGrid = field(default_factory=FrequencyGrid)
    voltage: VoltageCurve = field(default_factory=VoltageCurve)
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy)
    power: PowerSpec = field(default_factory=PowerSpec)
    thermal: ThermalSpec = field(default_factory=ThermalSpec)
    setfreq: SetFreqSpec = field(default_factory=SetFreqSpec)
    noise: NoiseSpec = field(default_factory=NoiseSpec)

    def volts_at(self, freq_mhz: float) -> float:
        """Supply voltage at a validated grid frequency."""
        self.frequencies.validate(freq_mhz)
        return float(self.voltage.volts(freq_mhz))

    @property
    def max_frequency_mhz(self) -> float:
        """The performance-baseline frequency (highest grid point)."""
        return self.frequencies.max_mhz

    @property
    def min_frequency_mhz(self) -> float:
        """The lowest supported core frequency."""
        return self.frequencies.min_mhz

    def with_setfreq(self, setfreq: SetFreqSpec) -> "NpuSpec":
        """A copy of this spec with different SetFreq characteristics."""
        return NpuSpec(
            name=self.name,
            frequencies=self.frequencies,
            voltage=self.voltage,
            memory=self.memory,
            power=self.power,
            thermal=self.thermal,
            setfreq=setfreq,
            noise=self.noise,
        )

    def with_uncore_frequency(self, scale: float) -> "NpuSpec":
        """A hypothetical NPU whose uncore domain is clocked at ``scale``.

        Sect. 8.2's future work: current Ascend hardware cannot tune the
        uncore (L2/HBM) frequency.  This constructor models the chip that
        could — the effective uncore bandwidth and the dynamic share of
        uncore power scale together with the uncore clock (voltage held,
        as no uncore V-f curve is published).
        """
        from dataclasses import replace as _replace

        if scale <= 0:
            raise ConfigurationError(f"uncore scale must be positive: {scale}")
        memory = _replace(
            self.memory,
            uncore_bandwidth_gbps=self.memory.uncore_bandwidth_gbps * scale,
        )
        dynamic = self.power.uncore_dynamic_fraction
        power = _replace(
            self.power,
            uncore_idle_watts=self.power.uncore_idle_watts
            * (1.0 - dynamic + dynamic * scale),
            uncore_bandwidth_watts=self.power.uncore_bandwidth_watts * scale,
        )
        return NpuSpec(
            name=f"{self.name}-uncore{scale:g}",
            frequencies=self.frequencies,
            voltage=self.voltage,
            memory=memory,
            power=power,
            thermal=self.thermal,
            setfreq=self.setfreq,
            noise=self.noise,
        )

    def with_noise(self, noise: NoiseSpec) -> "NpuSpec":
        """A copy of this spec with different measurement-noise levels."""
        return NpuSpec(
            name=self.name,
            frequencies=self.frequencies,
            voltage=self.voltage,
            memory=self.memory,
            power=self.power,
            thermal=self.thermal,
            setfreq=self.setfreq,
            noise=noise,
        )


def default_npu_spec() -> NpuSpec:
    """The calibrated Ascend-like NPU used across the reproduction."""
    return NpuSpec()


def noise_free_spec() -> NpuSpec:
    """An idealised NPU whose instruments report exact values."""
    return NpuSpec(
        name="ascend-sim-910-ideal",
        noise=NoiseSpec(
            duration_sigma=0.0,
            power_sigma=0.0,
            temperature_sigma_celsius=0.0,
            utilisation_sigma=0.0,
        ),
    )
