"""The simulated Ascend-like NPU substrate.

This package implements the hardware abstractions the paper's models rely
on: the DVFS frequency grid and voltage curve, the core/uncore memory
hierarchy with its Ld/St bandwidth law, the four operator timeline
scenarios, ground-truth CMOS power with RC thermal dynamics, the fast
SetFreq mechanism, and software substitutes for the CANN profiler and
``lpmi_tool`` telemetry.
"""

from repro.npu.device import (
    ExecutionResult,
    IDLE_INDEX,
    NpuDevice,
    OperatorRecord,
    PowerChunk,
)
from repro.npu.engine import (
    CompiledTrace,
    EngineStats,
    TraceEngine,
    fast_path_enabled,
    reference_only,
    set_fast_path_enabled,
)
from repro.npu.execution import GroundTruthEvaluator, OperatorEvaluation
from repro.npu.faults import (
    FaultConfig,
    FaultInjector,
    FaultyCannStyleProfiler,
    FaultyFrequencyPlan,
    FaultyPowerTelemetry,
    InjectedFault,
    SetFreqFault,
)
from repro.npu.frequency import FrequencyGrid
from repro.npu.memory import MemoryHierarchy
from repro.npu.pipelines import ALL_PIPES, CORE_PIPES, UNCORE_PIPES, Pipe
from repro.npu.power import PowerSpec, solve_equilibrium_power
from repro.npu.profiles import (
    PROFILES,
    edge_npu_spec,
    get_profile,
    gpu_v100_like_spec,
)
from repro.npu.profiler import (
    CannStyleProfiler,
    ProfiledOperator,
    ProfileReport,
    SHORT_OPERATOR_CUTOFF_US,
    merge_reports,
)
from repro.npu.setfreq import (
    FrequencySwitch,
    FrequencyTimeline,
    SetFreqCommand,
)
from repro.npu.spec import (
    NoiseSpec,
    NpuSpec,
    SetFreqSpec,
    default_npu_spec,
    noise_free_spec,
)
from repro.npu.telemetry import (
    PowerMeasurement,
    PowerSample,
    PowerTelemetry,
)
from repro.npu.thermal import ThermalSpec, ThermalState
from repro.npu.validation import (
    Finding,
    Severity,
    ValidationReport,
    validate_spec,
)
from repro.npu.tracing import (
    frequency_reverts_after,
    frequency_rises_before,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.npu.timeline import (
    BlockCosts,
    Scenario,
    Segment,
    Timeline,
    analytical_busy_stall,
    build_timeline,
    closed_form_cycles,
)
from repro.npu.voltage import VoltageCurve

__all__ = [
    "ALL_PIPES",
    "BlockCosts",
    "CORE_PIPES",
    "CannStyleProfiler",
    "CompiledTrace",
    "EngineStats",
    "ExecutionResult",
    "FaultConfig",
    "FaultInjector",
    "FaultyCannStyleProfiler",
    "FaultyFrequencyPlan",
    "FaultyPowerTelemetry",
    "Finding",
    "FrequencyGrid",
    "FrequencySwitch",
    "FrequencyTimeline",
    "GroundTruthEvaluator",
    "IDLE_INDEX",
    "InjectedFault",
    "MemoryHierarchy",
    "NoiseSpec",
    "NpuDevice",
    "NpuSpec",
    "PROFILES",
    "OperatorEvaluation",
    "OperatorRecord",
    "Pipe",
    "PowerChunk",
    "PowerMeasurement",
    "PowerSample",
    "PowerSpec",
    "PowerTelemetry",
    "ProfileReport",
    "ProfiledOperator",
    "SHORT_OPERATOR_CUTOFF_US",
    "Scenario",
    "Segment",
    "SetFreqCommand",
    "SetFreqFault",
    "Severity",
    "SetFreqSpec",
    "ThermalSpec",
    "ThermalState",
    "Timeline",
    "TraceEngine",
    "UNCORE_PIPES",
    "ValidationReport",
    "VoltageCurve",
    "analytical_busy_stall",
    "build_timeline",
    "closed_form_cycles",
    "default_npu_spec",
    "edge_npu_spec",
    "fast_path_enabled",
    "frequency_reverts_after",
    "frequency_rises_before",
    "get_profile",
    "gpu_v100_like_spec",
    "merge_reports",
    "noise_free_spec",
    "reference_only",
    "save_chrome_trace",
    "set_fast_path_enabled",
    "solve_equilibrium_power",
    "to_chrome_trace",
    "validate_spec",
]
