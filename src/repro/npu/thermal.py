"""Thermal model of the simulated chip (paper Sect. 5.4.2, Fig. 10).

Two behaviours from the paper are captured:

* **Equilibrium**: AICore temperature correlates linearly with SoC power,
  ``T = T0 + k * P_soc`` (Eq. 15, measured in Fig. 10).
* **Transient**: after a load completes, temperature and power decay
  *gradually*, not instantaneously — this is what lets the calibration
  extract the leakage-temperature coefficient ``gamma`` from cooldown
  samples.  We model a first-order RC response with time constant ``tau``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalSpec:
    """Constants of the thermal model.

    Attributes:
        ambient_celsius: ``T0``, the ambient (and idle-chip) temperature.
        celsius_per_watt: ``k`` of Eq. (15), the equilibrium slope of chip
            temperature over SoC power.
        time_constant_us: RC time constant of the transient response, in
            microseconds (tens of seconds on real hardware).
    """

    ambient_celsius: float = 25.0
    celsius_per_watt: float = 0.14
    time_constant_us: float = 25_000_000.0

    def __post_init__(self) -> None:
        if self.celsius_per_watt <= 0:
            raise ConfigurationError(
                f"celsius_per_watt must be positive: {self.celsius_per_watt}"
            )
        if self.time_constant_us <= 0:
            raise ConfigurationError(
                f"time constant must be positive: {self.time_constant_us}"
            )

    def equilibrium_celsius(self, soc_power_watts: float) -> float:
        """Steady-state chip temperature under ``soc_power_watts`` — Eq. (15)."""
        if soc_power_watts < 0:
            raise ConfigurationError(f"power must be non-negative: {soc_power_watts}")
        return self.ambient_celsius + self.celsius_per_watt * soc_power_watts

    def equilibrium_delta(self, soc_power_watts: float) -> float:
        """Steady-state temperature rise ``AT = k * P_soc`` above ambient."""
        return self.equilibrium_celsius(soc_power_watts) - self.ambient_celsius


class ThermalState:
    """Mutable chip temperature evolving under a power trace.

    The state advances with the exact solution of the first-order ODE
    ``dT/dt = (T_eq(P) - T) / tau`` over each constant-power interval, so
    step size does not affect accuracy.
    """

    def __init__(self, spec: ThermalSpec, initial_celsius: float | None = None):
        self._spec = spec
        self._celsius = (
            spec.ambient_celsius if initial_celsius is None else float(initial_celsius)
        )

    @property
    def spec(self) -> ThermalSpec:
        """The immutable thermal constants."""
        return self._spec

    @property
    def celsius(self) -> float:
        """Current chip temperature."""
        return self._celsius

    @property
    def delta_celsius(self) -> float:
        """Current temperature rise ``AT`` above ambient."""
        return self._celsius - self._spec.ambient_celsius

    def advance(self, soc_power_watts: float, duration_us: float) -> float:
        """Advance the temperature under constant power for ``duration_us``.

        Returns:
            The temperature at the end of the interval.
        """
        if duration_us < 0:
            raise ConfigurationError(f"duration must be non-negative: {duration_us}")
        target = self._spec.equilibrium_celsius(soc_power_watts)
        decay = float(np.exp(-duration_us / self._spec.time_constant_us))
        self._celsius = target + (self._celsius - target) * decay
        return self._celsius

    def settle(self, soc_power_watts: float) -> float:
        """Jump directly to the equilibrium temperature for a power level."""
        self._celsius = self._spec.equilibrium_celsius(soc_power_watts)
        return self._celsius

    def reset(self, celsius: float | None = None) -> None:
        """Reset to ambient (or an explicit temperature)."""
        self._celsius = (
            self._spec.ambient_celsius if celsius is None else float(celsius)
        )
