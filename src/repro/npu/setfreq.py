"""Frequency-setting commands and the resulting frequency timeline.

Ascend CANN's ``SetFreq`` operator changes the core frequency within ~1 ms
(Sect. 7.1).  A DVFS strategy compiles into a sequence of
:class:`SetFreqCommand` dispatches on a dedicated stream; after each
command's latency elapses, the new frequency takes effect.  The resulting
step function of time is a :class:`FrequencyTimeline`, which the device
consults while integrating operator execution.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import StrategyError
from repro.npu.frequency import FrequencyGrid
from repro.npu.spec import SetFreqSpec

#: Switches whose effect times differ by no more than this are treated as
#: simultaneous.  Effect times are computed with ``dispatch + latency``
#: arithmetic, so two switches intended for the same instant can differ by
#: a few float ulps; exact equality would let both survive collapsing.
SAME_TIME_TOLERANCE_US = 1e-9


@dataclass(frozen=True)
class SetFreqCommand:
    """A SetFreq dispatch: at ``dispatch_time_us``, request ``target_mhz``."""

    dispatch_time_us: float
    target_mhz: float

    def __post_init__(self) -> None:
        if self.dispatch_time_us < 0:
            raise StrategyError(
                f"dispatch time must be non-negative: {self.dispatch_time_us}"
            )

    def effect_time_us(self, setfreq: SetFreqSpec) -> float:
        """When the new frequency takes effect under the given latency."""
        return self.dispatch_time_us + setfreq.total_latency_us


@dataclass(frozen=True)
class FrequencySwitch:
    """A frequency change taking effect at ``time_us``."""

    time_us: float
    freq_mhz: float


class FrequencyTimeline:
    """Core frequency as a step function of time.

    Switches are sorted by effect time; when two switches share an effect
    time the later-dispatched one wins (matching hardware, where the last
    write to the frequency register sticks).
    """

    def __init__(
        self, initial_mhz: float, switches: tuple[FrequencySwitch, ...] = ()
    ) -> None:
        self._initial = float(initial_mhz)
        ordered = sorted(switches, key=lambda s: s.time_us)
        # Collapse switches that share an effect time (within a float-ulp
        # tolerance — see SAME_TIME_TOLERANCE_US): the last one wins.
        collapsed: list[FrequencySwitch] = []
        for switch in ordered:
            if (
                collapsed
                and switch.time_us - collapsed[-1].time_us
                <= SAME_TIME_TOLERANCE_US
            ):
                collapsed[-1] = switch
            else:
                collapsed.append(switch)
        self._switches = tuple(collapsed)
        self._times = [s.time_us for s in self._switches]

    @classmethod
    def constant(cls, freq_mhz: float) -> "FrequencyTimeline":
        """A timeline that never changes frequency."""
        return cls(initial_mhz=freq_mhz)

    @classmethod
    def from_commands(
        cls,
        initial_mhz: float,
        commands: tuple[SetFreqCommand, ...] | list[SetFreqCommand],
        setfreq: SetFreqSpec,
        grid: FrequencyGrid | None = None,
    ) -> "FrequencyTimeline":
        """Compile SetFreq dispatches into a timeline under a latency spec.

        Args:
            initial_mhz: frequency in effect at time zero.
            commands: dispatches, in any order.
            setfreq: latency characteristics (base + extra delay).
            grid: optional grid to validate all targets against.
        """
        if grid is not None:
            grid.validate(initial_mhz)
            for command in commands:
                grid.validate(command.target_mhz)
        switches = tuple(
            FrequencySwitch(
                time_us=command.effect_time_us(setfreq),
                freq_mhz=command.target_mhz,
            )
            for command in sorted(commands, key=lambda c: c.dispatch_time_us)
        )
        return cls(initial_mhz=initial_mhz, switches=switches)

    @property
    def initial_mhz(self) -> float:
        """Frequency in effect at time zero."""
        return self._initial

    @property
    def switches(self) -> tuple[FrequencySwitch, ...]:
        """All effective switches, sorted by effect time."""
        return self._switches

    @property
    def switch_count(self) -> int:
        """Number of effective frequency changes."""
        return len(self._switches)

    def frequency_at(self, time_us: float) -> float:
        """Frequency in effect at ``time_us`` (switch times are inclusive)."""
        idx = bisect.bisect_right(self._times, time_us)
        if idx == 0:
            return self._initial
        return self._switches[idx - 1].freq_mhz

    def next_switch_after(self, time_us: float) -> FrequencySwitch | None:
        """The first switch strictly after ``time_us``, or None."""
        idx = bisect.bisect_right(self._times, time_us)
        if idx >= len(self._switches):
            return None
        return self._switches[idx]

    def distinct_frequencies(self) -> set[float]:
        """All frequencies the timeline ever settles on."""
        return {self._initial, *(s.freq_mhz for s in self._switches)}

    def on_op_start(self, op_index: int, time_us: float) -> None:
        """No-op: a wall-clock timeline ignores operator boundaries."""


@dataclass(frozen=True)
class AnchoredSwitch:
    """A frequency change anchored to an operator index.

    The paper's executor (Sect. 7.1, Fig. 14) dispatches SetFreq one
    latency ahead of the intended change point and uses Event Record/Wait
    between the compute and SetFreq streams, so the change takes effect
    exactly when the anchor operator starts — even when earlier frequency
    changes have shifted the wall-clock timeline.
    """

    op_index: int
    freq_mhz: float

    def __post_init__(self) -> None:
        if self.op_index < 0:
            raise StrategyError(f"op_index must be >= 0: {self.op_index}")


class AnchoredFrequencyPlan:
    """Frequency control anchored to operator starts.

    With zero extra delay, each switch takes effect exactly at its anchor
    operator's start (the event-synchronised behaviour of Fig. 14).  With
    an extra hardware delay (the V100 comparison of Fig. 18), the change
    lands ``extra_delay_us`` *after* the anchor starts — the planner
    dispatched SetFreq expecting the documented latency, and the slow
    hardware misses the intended point.

    The plan is stateful across one execution; the device calls
    :meth:`on_op_start` as it dispatches operators.  Use :meth:`reset`
    (the device does) before reuse.
    """

    def __init__(
        self,
        initial_mhz: float,
        anchors: tuple[AnchoredSwitch, ...] | list[AnchoredSwitch],
        extra_delay_us: float = 0.0,
    ) -> None:
        if extra_delay_us < 0:
            raise StrategyError(f"extra delay must be >= 0: {extra_delay_us}")
        by_index: dict[int, float] = {}
        for anchor in anchors:
            by_index[anchor.op_index] = anchor.freq_mhz
        self._initial = float(initial_mhz)
        self._anchors = by_index
        self._extra_delay = float(extra_delay_us)
        self._current = self._initial
        self._pending: list[FrequencySwitch] = []
        self._queued: float | None = None
        self._applied_switches = 0
        self._dropped_switches = 0

    @property
    def initial_mhz(self) -> float:
        """Frequency in effect at time zero."""
        return self._initial

    @property
    def switch_count(self) -> int:
        """Number of anchored switches in the plan."""
        return len(self._anchors)

    @property
    def applied_switch_count(self) -> int:
        """Switches that have taken effect so far in this execution."""
        return self._applied_switches

    @property
    def dropped_switch_count(self) -> int:
        """Requests superseded while waiting for a busy controller."""
        return self._dropped_switches

    @property
    def extra_delay_us(self) -> float:
        """Extra hardware delay past the documented SetFreq latency."""
        return self._extra_delay

    def compile_op_schedule(
        self, n_ops: int
    ) -> tuple[list[float], list[float]]:
        """Per-operator frequency schedule for a zero-extra-delay plan.

        With zero extra delay every anchored switch takes effect exactly
        at its anchor operator's start, so the whole execution reduces to
        one frequency per operator (and one for the idle gap before it) —
        the closed form the compiled-trace engine executes vectorised.
        The plan's mutable state is fast-forwarded to exactly what a full
        replay through :meth:`on_op_start`/:meth:`frequency_at` would
        leave behind, so post-run inspection (``applied_switch_count``)
        is indistinguishable from the reference path.

        Returns:
            ``(gap_freqs, op_freqs)``: frequency in effect during the idle
            span before each operator, and while it runs.

        Raises:
            StrategyError: if the plan has a non-zero extra delay (its
                switches land mid-operator and need the reference loop).
        """
        if self._extra_delay != 0.0:
            raise StrategyError(
                "compile_op_schedule requires zero extra delay; "
                f"got {self._extra_delay} us"
            )
        self.reset()
        gap_freqs: list[float] = []
        op_freqs: list[float] = []
        current = self._initial
        applied = 0
        for index in range(n_ops):
            gap_freqs.append(current)
            freq = self._anchors.get(index)
            if freq is not None:
                # The reference path schedules and immediately consumes
                # the switch, counting it applied even when the target
                # equals the current frequency.
                current = freq
                applied += 1
            op_freqs.append(current)
        self._current = current
        self._applied_switches = applied
        return gap_freqs, op_freqs

    def reset(self) -> None:
        """Prepare the plan for a fresh execution."""
        self._current = self._initial
        self._pending = []
        self._queued = None
        self._applied_switches = 0
        self._dropped_switches = 0

    def on_op_start(self, op_index: int, time_us: float) -> None:
        """Notify the plan that operator ``op_index`` starts at ``time_us``.

        With an extra hardware delay, the frequency-control interface is
        *busy* while a change is in flight (slow controllers like the
        V100's clock API serialise requests).  A request arriving while
        busy is held in a depth-one queue; a newer request replaces the
        held one (it is superseded).  This is what erodes fine-grained
        strategies on slow hardware: short LFC windows either land late or
        are skipped entirely, while the chip still converges to the latest
        requested frequency (Fig. 18).
        """
        freq = self._anchors.get(op_index)
        if freq is None:
            return
        self.request(freq, time_us)

    def request(self, freq_mhz: float, time_us: float) -> None:
        """Dispatch one frequency-change request to the controller.

        This is the raw controller interface ``on_op_start`` routes
        through; the guarded runtime also calls it directly to re-issue
        failed changes, and the fault layer overrides it to inject
        command failures.
        """
        if self._controller_busy(time_us):
            self._enqueue(freq_mhz)
            return
        self._schedule(freq_mhz, time_us + self._extra_delay)

    def _controller_busy(self, time_us: float) -> bool:
        """Whether a new request must wait in the depth-one queue."""
        return self._extra_delay > 0 and bool(self._pending)

    def _enqueue(self, freq_mhz: float) -> None:
        """Hold a request in the depth-one queue (superseding any held)."""
        if self._queued is not None:
            self._dropped_switches += 1
        self._queued = freq_mhz

    def _schedule(self, freq_mhz: float, effect_us: float) -> None:
        """Commit a switch to take effect at ``effect_us``."""
        self._pending.append(
            FrequencySwitch(time_us=effect_us, freq_mhz=freq_mhz)
        )
        self._pending.sort(key=lambda s: s.time_us)

    def _release_queued(self, completed_us: float) -> None:
        """Issue the held request once the controller frees up."""
        if self._queued is not None:
            self._schedule(self._queued, completed_us + self._extra_delay)
            self._queued = None

    def frequency_at(self, time_us: float) -> float:
        """Frequency in effect at ``time_us`` (consumes due switches)."""
        while self._pending and self._pending[0].time_us <= time_us:
            completed = self._pending.pop(0)
            self._current = completed.freq_mhz
            self._applied_switches += 1
            # The controller is free again: issue any held request.
            self._release_queued(completed.time_us)
        return self._current

    def next_switch_after(self, time_us: float) -> FrequencySwitch | None:
        """The first pending switch strictly after ``time_us``, or None."""
        for switch in self._pending:
            if switch.time_us > time_us:
                return switch
        return None
