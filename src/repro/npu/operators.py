"""Operator specifications — the ground-truth description of one AI operator.

This lives in the :mod:`repro.npu` package because an operator spec is what
the hardware executes; the :mod:`repro.workloads` package re-exports these
types as its public surface and builds traces out of them.

An :class:`OperatorSpec` carries everything the simulator needs to execute
an operator: its timeline scenario, block structure, per-block core cycles
and transfer volumes, pipe mix, and fixed overheads.  It deliberately does
*not* carry any fitted model — models are learned from profiled
measurements, exactly as on real hardware.

Besides compute operators, traces contain AICPU operators, communication
operators, and scheduler-generated idle spans (Sect. 6.1), all of which are
insensitive to the AICore frequency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.errors import WorkloadError
from repro.npu.pipelines import Pipe, validate_core_mix
from repro.npu.timeline import Scenario


class OperatorKind(enum.Enum):
    """Top-level operator categories of Sect. 6.1."""

    COMPUTE = "compute"
    AICPU = "aicpu"
    COMMUNICATION = "communication"
    IDLE = "idle"


@dataclass(frozen=True)
class ComputeCharacter:
    """Ground-truth execution character of a compute operator.

    Attributes:
        scenario: which of the four timeline scenarios (Sect. 4.2) applies.
        n_blocks: number of core computations ``n``.
        core_cycles_per_block: frequency-independent core cycles per block.
        core_mix: fractions of a core block spent on each core pipe, as a
            sorted tuple of ``(pipe, fraction)`` pairs (hashable).
        ld_bytes_per_block: move-in volume per block.
        st_bytes_per_block: move-out volume per block.
        bandwidth_derate: effective uncore-bandwidth multiplier for this
            operator (models L2 hit rate; see MemoryHierarchy).
        fixed_overhead_us: frequency-independent pre/post-processing time.
    """

    scenario: Scenario
    n_blocks: int
    core_cycles_per_block: float
    core_mix: tuple[tuple[Pipe, float], ...]
    ld_bytes_per_block: float
    st_bytes_per_block: float
    bandwidth_derate: float = 1.0
    fixed_overhead_us: float = 0.0

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise WorkloadError(f"n_blocks must be >= 1, got {self.n_blocks}")
        if self.core_cycles_per_block < 0:
            raise WorkloadError("core_cycles_per_block must be non-negative")
        if self.ld_bytes_per_block < 0 or self.st_bytes_per_block < 0:
            raise WorkloadError("transfer volumes must be non-negative")
        if self.bandwidth_derate <= 0:
            raise WorkloadError(
                f"bandwidth_derate must be positive: {self.bandwidth_derate}"
            )
        if self.fixed_overhead_us < 0:
            raise WorkloadError("fixed_overhead_us must be non-negative")
        validate_core_mix(self.core_mix_dict)

    @property
    def core_mix_dict(self) -> dict[Pipe, float]:
        """The core pipe mix as a dictionary."""
        return dict(self.core_mix)

    @staticmethod
    def make_mix(mix: Mapping[Pipe, float]) -> tuple[tuple[Pipe, float], ...]:
        """Normalise a mapping into the hashable sorted-tuple mix format."""
        validate_core_mix(dict(mix))
        return tuple(
            sorted(
                ((pipe, float(frac)) for pipe, frac in mix.items() if frac > 0),
                key=lambda item: item[0].value,
            )
        )


@dataclass(frozen=True)
class OperatorSpec:
    """A named operator, either compute (with a character) or fixed-time.

    Attributes:
        name: unique identifier within a workload, e.g.
            ``"MatMul_b4096_4096x4096"``.
        op_type: the operator family, e.g. ``"MatMul"`` or ``"Gelu"``.
        kind: compute / AICPU / communication / idle.
        compute: the ground-truth character; required iff ``kind`` is
            ``COMPUTE``.
        fixed_duration_us: wall time for non-compute operators, which do
            not react to the AICore frequency.
    """

    name: str
    op_type: str
    kind: OperatorKind = OperatorKind.COMPUTE
    compute: ComputeCharacter | None = None
    fixed_duration_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("operator name must be non-empty")
        if self.kind is OperatorKind.COMPUTE:
            if self.compute is None:
                raise WorkloadError(
                    f"compute operator {self.name!r} needs a ComputeCharacter"
                )
        else:
            if self.compute is not None:
                raise WorkloadError(
                    f"non-compute operator {self.name!r} must not carry a "
                    "ComputeCharacter"
                )
            if self.fixed_duration_us <= 0:
                raise WorkloadError(
                    f"non-compute operator {self.name!r} needs a positive "
                    "fixed duration"
                )

    @property
    def is_compute(self) -> bool:
        """Whether this operator executes on the AICore pipelines."""
        return self.kind is OperatorKind.COMPUTE

    def total_ld_bytes(self) -> float:
        """Total move-in volume across all blocks (0 for non-compute)."""
        if self.compute is None:
            return 0.0
        return self.compute.ld_bytes_per_block * self.compute.n_blocks

    def total_st_bytes(self) -> float:
        """Total move-out volume across all blocks (0 for non-compute)."""
        if self.compute is None:
            return 0.0
        return self.compute.st_bytes_per_block * self.compute.n_blocks


def make_fixed_operator(
    name: str,
    kind: OperatorKind,
    duration_us: float,
    op_type: str | None = None,
) -> OperatorSpec:
    """Convenience constructor for AICPU/communication/idle operators."""
    if kind is OperatorKind.COMPUTE:
        raise WorkloadError("use OperatorSpec directly for compute operators")
    return OperatorSpec(
        name=name,
        op_type=op_type if op_type is not None else kind.value,
        kind=kind,
        compute=None,
        fixed_duration_us=duration_us,
    )
