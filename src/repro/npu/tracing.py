"""Execution-trace export and inspection (paper Sect. 7.4 validation).

The paper validates its generated policy by *reviewing the visualised
trace*: right before a compute-bound MatMul executes, the AICore frequency
rises from 1100 MHz to 1800 MHz, then falls back afterwards.  This module
provides the same capability for the simulator:

* :func:`to_chrome_trace` exports an :class:`ExecutionResult` as a Chrome
  trace-event JSON document (open it in ``chrome://tracing`` or Perfetto):
  one track of operator spans, one counter track for the core frequency,
  and one for AICore/SoC power;
* :func:`frequency_rises_before` checks the paper's validation predicate
  programmatically — does the frequency step up right before operators of
  a given type, and back down after?
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ProfilingError
from repro.npu.device import ExecutionResult
from repro.npu.operators import OperatorKind


def to_chrome_trace(result: ExecutionResult) -> str:
    """Serialise an execution as Chrome trace-event JSON.

    The document contains complete events (`ph: "X"`) for every operator
    and counter events (`ph: "C"`) for frequency and power, all on one
    process ("NPU") with the operator track as thread 0.
    """
    if not result.records:
        raise ProfilingError("execution has no operator records")
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": f"NPU ({result.trace_name})"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "operators"},
        },
    ]
    for record in result.records:
        spec = record.evaluation.spec
        events.append(
            {
                "name": spec.op_type,
                "cat": spec.kind.value,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": record.start_us,
                "dur": record.duration_us,
                "args": {
                    "operator": spec.name,
                    "freq_mhz": record.start_freq_mhz,
                    "aicore_energy_j": record.aicore_energy_j,
                },
            }
        )
    for chunk in result.chunks:
        events.append(
            {
                "name": "core frequency (MHz)",
                "ph": "C",
                "pid": 0,
                "ts": chunk.start_us,
                "args": {"MHz": chunk.freq_mhz},
            }
        )
        events.append(
            {
                "name": "power (W)",
                "ph": "C",
                "pid": 0,
                "ts": chunk.start_us,
                "args": {
                    "aicore": round(chunk.aicore_watts, 3),
                    "soc": round(chunk.soc_watts, 3),
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def save_chrome_trace(result: ExecutionResult, path: str | Path) -> None:
    """Write :func:`to_chrome_trace` output to a file."""
    Path(path).write_text(to_chrome_trace(result), encoding="utf-8")


def frequency_rises_before(
    result: ExecutionResult,
    op_type: str,
    min_rise_mhz: float = 100.0,
) -> list[int]:
    """Indices of ``op_type`` operators preceded by a frequency step-up.

    This is the paper's Sect. 7.4 spot check in predicate form: 'right
    before executing a compute-bound MatMul operator, the AICore frequency
    is increased ... After the operator finished, the frequency reverted.'
    An index qualifies when the operator starts at a frequency at least
    ``min_rise_mhz`` above its predecessor's.
    """
    qualifying = []
    for previous, record in zip(result.records, result.records[1:]):
        spec = record.evaluation.spec
        if spec.op_type != op_type:
            continue
        if spec.kind is not OperatorKind.COMPUTE:
            continue
        if record.start_freq_mhz >= previous.start_freq_mhz + min_rise_mhz:
            qualifying.append(record.index)
    return qualifying


def frequency_reverts_after(
    result: ExecutionResult,
    op_index: int,
    min_drop_mhz: float = 100.0,
) -> bool:
    """Whether the frequency steps back down after operator ``op_index``."""
    if not 0 <= op_index < len(result.records) - 1:
        return False
    here = result.records[op_index]
    following = result.records[op_index + 1]
    return following.start_freq_mhz <= here.start_freq_mhz - min_drop_mhz
