"""Memory hierarchy abstraction and the Ld/St bandwidth law (paper Sect. 4.1).

The paper's models rely only on an abstraction of the hierarchy (Fig. 2):
an L1 cache per AICore in the *core* frequency domain, and a shared L2 plus
HBM in the fixed-frequency *uncore* domain.  Data transfer between domains
obeys Eq. (1):

    Tp(f) = min(C * f * core_num, BW_uncore)

with ``C`` a hardware constant (bus port width) and ``BW_uncore`` the peak
uncore bandwidth (shaped by L2 bandwidth, HBM bandwidth and L2 hit rate).
From Eq. (3)-(4), moving ``M`` bytes at core frequency ``f`` costs

    Cycle(f) = max(M * f / BW_uncore, M / (C * core_num)) + T0 * f

which is the ``max(a*f, c) + T0*f`` building block of every operator cycle
function.  Per-operator L2 hit-rate variety is modelled with a bandwidth
*derate* multiplier on ``BW_uncore``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbps_to_bytes_per_us


def smooth_max(x: float, y: float, sharpness: float) -> float:
    """The p-norm relaxation ``(x^p + y^p)^(1/p)`` of ``max(x, y)``.

    Converges to ``max(x, y)`` as ``sharpness -> inf``; convex in each
    argument for ``sharpness >= 1``.  Inputs must be non-negative.
    """
    if x < 0 or y < 0:
        raise ConfigurationError(f"smooth_max needs non-negative inputs: {x}, {y}")
    if x == 0 or y == 0:
        return max(x, y)
    # Factor out the larger term for numerical stability.
    hi, lo = (x, y) if x >= y else (y, x)
    ratio = lo / hi
    return hi * (1.0 + ratio**sharpness) ** (1.0 / sharpness)


@dataclass(frozen=True)
class MemoryHierarchy:
    """Static description of the simulated memory system.

    Attributes:
        core_count: number of AICores sharing the uncore.
        bytes_per_cycle_per_core: the hardware constant ``C`` of Eq. (1).
        uncore_bandwidth_gbps: peak uncore bandwidth ``BW_uncore`` in GB/s
            at a neutral derate of 1.0.
        transfer_overhead_us: the fixed time overhead ``T0`` of a transfer
            (initiation, signal propagation), in microseconds.
        l1_kib_per_core: L1 size, informational (capacity is not modelled).
        l2_mib: shared L2 size, informational.
        hbm_gib: HBM capacity, informational.
    """

    core_count: int = 24
    bytes_per_cycle_per_core: float = 36.0
    uncore_bandwidth_gbps: float = 1200.0
    transfer_overhead_us: float = 0.05
    #: Sharpness ``p`` of the saturation corner.  Eq. (1)'s ideal
    #: ``min(C*f*core_num, BW)`` is an idealisation; measured hardware
    #: transitions smoothly as transfers begin to queue near saturation.
    #: We model the transfer cycles with the p-norm relaxation
    #: ``((a*f)^p + c^p)^(1/p)``, which converges to the ideal ``max`` as
    #: ``p -> inf`` and remains convex in ``f`` for any ``p >= 1``.
    saturation_sharpness: float = 6.0
    l1_kib_per_core: float = 512.0
    l2_mib: float = 192.0
    hbm_gib: float = 64.0

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ConfigurationError(f"core_count must be positive: {self.core_count}")
        if self.bytes_per_cycle_per_core <= 0:
            raise ConfigurationError(
                f"bytes_per_cycle_per_core must be positive: "
                f"{self.bytes_per_cycle_per_core}"
            )
        if self.uncore_bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"uncore bandwidth must be positive: {self.uncore_bandwidth_gbps}"
            )
        if self.transfer_overhead_us < 0:
            raise ConfigurationError(
                f"transfer overhead must be non-negative: {self.transfer_overhead_us}"
            )
        if self.saturation_sharpness < 1:
            raise ConfigurationError(
                f"saturation_sharpness must be >= 1: {self.saturation_sharpness}"
            )

    @property
    def core_bytes_per_cycle(self) -> float:
        """Total core-side transfer width ``C * core_num`` in bytes/cycle."""
        return self.bytes_per_cycle_per_core * self.core_count

    def uncore_bandwidth(self, derate: float = 1.0) -> float:
        """Effective uncore bandwidth in bytes/us for a given derate.

        The *derate* folds per-operator L2 hit rate into the bandwidth: a
        value above 1.0 models L2-resident traffic (hits amplify effective
        bandwidth), below 1.0 models HBM-heavy or strided access.
        """
        if derate <= 0:
            raise ConfigurationError(f"bandwidth derate must be positive: {derate}")
        return gbps_to_bytes_per_us(self.uncore_bandwidth_gbps) * derate

    def throughput(self, freq_mhz: float, derate: float = 1.0) -> float:
        """Ld/St throughput ``Tp(f)`` in bytes/us — Eq. (1)."""
        if freq_mhz <= 0:
            raise ConfigurationError(f"frequency must be positive: {freq_mhz}")
        core_side = self.core_bytes_per_cycle * freq_mhz
        return min(core_side, self.uncore_bandwidth(derate))

    def saturation_frequency(self, derate: float = 1.0) -> float:
        """The saturation point ``f_s = BW_uncore / (C * core_num)`` — Eq. (2).

        Above this core frequency the uncore bandwidth, not the core-side
        port width, limits transfer throughput.
        """
        return self.uncore_bandwidth(derate) / self.core_bytes_per_cycle

    def transfer_cycle_coefficients(
        self, volume_bytes: float, derate: float = 1.0
    ) -> tuple[float, float]:
        """The ``(a, c)`` of ``Cycle(f) = max(a*f, c) + T0*f`` — Eq. (4).

        ``a = M / BW_uncore`` (microseconds: the wall time once the uncore
        saturates) and ``c = M / (C * core_num)`` (cycles: the core-side
        port-limited cost).  The caller adds the ``T0 * f`` term.

        Raises:
            ConfigurationError: on negative volume.
        """
        if volume_bytes < 0:
            raise ConfigurationError(f"volume must be non-negative: {volume_bytes}")
        a = volume_bytes / self.uncore_bandwidth(derate)
        c = volume_bytes / self.core_bytes_per_cycle
        return a, c

    def transfer_cycles(
        self, volume_bytes: float, freq_mhz: float, derate: float = 1.0
    ) -> float:
        """Core-domain cycles to move ``volume_bytes`` at ``freq_mhz``.

        This is Eq. (4) with the saturation corner smoothed by the p-norm
        relaxation (see :attr:`saturation_sharpness`): the ideal
        ``max(a*f, c)`` becomes ``((a*f)^p + c^p)^(1/p)``.
        """
        if volume_bytes == 0:
            return 0.0
        a, c = self.transfer_cycle_coefficients(volume_bytes, derate)
        smoothed = smooth_max(a * freq_mhz, c, self.saturation_sharpness)
        return smoothed + self.transfer_overhead_us * freq_mhz

    def transfer_time_us(
        self, volume_bytes: float, freq_mhz: float, derate: float = 1.0
    ) -> float:
        """Wall time of a transfer in microseconds — Eq. (3)."""
        return self.transfer_cycles(volume_bytes, freq_mhz, derate) / freq_mhz
