"""Consistency checks for NPU specifications.

Custom accelerator descriptions (the Sect. 8.3 generalisation path) are
easy to get subtly wrong — a thermal feedback loop that runs away, a
voltage curve that collapses dynamic power ordering, a saturation point
far outside the DVFS range.  :func:`validate_spec` runs the whole
checklist and reports findings instead of letting a bad spec surface as a
confusing experiment result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.npu.pipelines import ALL_PIPES
from repro.npu.spec import NpuSpec


class Severity(enum.Enum):
    """How seriously a finding should be taken."""

    #: The spec will produce wrong or meaningless results.
    ERROR = "error"
    #: The spec is usable but probably not what was intended.
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: Severity
    code: str
    message: str


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one spec."""

    spec_name: str
    findings: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors

    @property
    def errors(self) -> list[Finding]:
        """Only the error-severity findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Only the warning-severity findings."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def render(self) -> str:
        """Human-readable report."""
        if not self.findings:
            return f"{self.spec_name}: ok"
        lines = [f"{self.spec_name}:"]
        for finding in self.findings:
            lines.append(
                f"  [{finding.severity.value}] {finding.code}: "
                f"{finding.message}"
            )
        return "\n".join(lines)


def validate_spec(spec: NpuSpec) -> ValidationReport:
    """Run every consistency check against a spec."""
    findings: list[Finding] = []
    findings.extend(_check_thermal_stability(spec))
    findings.extend(_check_voltage_ordering(spec))
    findings.extend(_check_saturation_band(spec))
    findings.extend(_check_power_sanity(spec))
    findings.extend(_check_setfreq(spec))
    return ValidationReport(spec_name=spec.name, findings=tuple(findings))


def _check_thermal_stability(spec: NpuSpec) -> list[Finding]:
    findings = []
    worst_volts = max(spec.volts_at(f) for f in spec.frequencies.points)
    gain = spec.power.thermal_feedback_gain(worst_volts)
    loop = gain * spec.thermal.celsius_per_watt
    if loop >= 1.0:
        findings.append(
            Finding(
                Severity.ERROR,
                "thermal-runaway",
                f"leakage-temperature loop gain {loop:.2f} >= 1: power and "
                "temperature diverge; reduce gamma or k",
            )
        )
    elif loop > 0.5:
        findings.append(
            Finding(
                Severity.WARNING,
                "thermal-marginal",
                f"loop gain {loop:.2f} > 0.5: equilibrium power is very "
                "sensitive to the thermal constants",
            )
        )
    return findings


def _check_voltage_ordering(spec: NpuSpec) -> list[Finding]:
    findings = []
    points = spec.frequencies.points
    dynamic = [
        f / 1000.0 * spec.volts_at(f) ** 2 for f in points
    ]
    if any(b <= a for a, b in zip(dynamic, dynamic[1:])):
        findings.append(
            Finding(
                Severity.ERROR,
                "fv2-not-increasing",
                "f*V^2 is not strictly increasing across the grid: DVFS "
                "would have frequencies that cost performance without "
                "saving power",
            )
        )
    if spec.voltage.knee_mhz > spec.frequencies.max_mhz:
        findings.append(
            Finding(
                Severity.WARNING,
                "flat-voltage",
                "the voltage knee sits above the grid: voltage never rises "
                "with frequency, flattening the DVFS power lever",
            )
        )
    return findings


def _check_saturation_band(spec: NpuSpec) -> list[Finding]:
    findings = []
    fs = spec.memory.saturation_frequency()
    lo, hi = spec.frequencies.min_mhz, spec.frequencies.max_mhz
    if fs < lo / 4 or fs > hi * 4:
        findings.append(
            Finding(
                Severity.WARNING,
                "saturation-far-from-grid",
                f"the neutral Ld/St saturation point ({fs:.0f} MHz) is far "
                f"outside the DVFS range [{lo:.0f}, {hi:.0f}]: every "
                "operator will be either always or never bandwidth-bound",
            )
        )
    return findings


def _check_power_sanity(spec: NpuSpec) -> list[Finding]:
    findings = []
    for pipe in ALL_PIPES:
        if spec.power.pipe_alpha_w_per_ghz_v2[pipe] == 0:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "zero-pipe-alpha",
                    f"pipe {pipe.value} draws no load power: operators "
                    "bound on it will look free to the optimizer",
                )
            )
    f_max = spec.frequencies.max_mhz
    volts = spec.volts_at(f_max)
    idle = spec.power.aicore_idle_power(f_max, volts)
    busy = spec.power.aicore_power(
        {pipe: 1.0 for pipe in ALL_PIPES}, f_max, volts, 0.0
    )
    if busy <= idle * 1.05:
        findings.append(
            Finding(
                Severity.ERROR,
                "no-dynamic-range",
                "a fully busy AICore draws barely more than an idle one: "
                "load power is miscalibrated",
            )
        )
    return findings


def _check_setfreq(spec: NpuSpec) -> list[Finding]:
    findings = []
    if spec.setfreq.total_latency_us > 50_000.0:
        findings.append(
            Finding(
                Severity.WARNING,
                "slow-setfreq",
                f"frequency control takes "
                f"{spec.setfreq.total_latency_us / 1000:.0f} ms: "
                "operator-level DVFS will degrade (see the fig18 "
                "experiment)",
            )
        )
    return findings
