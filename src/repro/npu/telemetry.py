"""Software substitute for Ascend's ``lpmi_tool`` power telemetry.

The paper samples SoC/AICore power and chip temperature during runs and
cooldowns.  :class:`PowerTelemetry` resamples the device's piecewise-
constant power chunks at a fixed interval, adding sensor noise, and offers
the aggregate measurements the calibration flow needs (average power over a
run, cooldown decay traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ProfilingError
from repro.npu.device import ExecutionResult, PowerChunk
from repro.npu.spec import NpuSpec
from repro.units import US_PER_S


@dataclass(frozen=True)
class PowerSample:
    """One telemetry reading."""

    time_us: float
    soc_watts: float
    aicore_watts: float
    celsius: float


@dataclass(frozen=True)
class PowerMeasurement:
    """Aggregate power measurement over a run (what Table 3 reports)."""

    duration_us: float
    soc_avg_watts: float
    aicore_avg_watts: float
    avg_celsius: float


class PowerTelemetry:
    """Samples and aggregates power data with sensor noise."""

    def __init__(self, npu: NpuSpec, rng: np.random.Generator) -> None:
        self._npu = npu
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The instrument's noise stream (shared with grid profiling)."""
        return self._rng

    def sample_chunks(
        self, chunks: Sequence[PowerChunk], interval_us: float = 1000.0
    ) -> list[PowerSample]:
        """Read sensors every ``interval_us`` across a chunk sequence."""
        if not chunks:
            raise ProfilingError("no power chunks to sample")
        if interval_us <= 0:
            raise ProfilingError(f"interval must be positive: {interval_us}")
        noise = self._npu.noise
        samples: list[PowerSample] = []
        chunk_iter = iter(chunks)
        current = next(chunk_iter)
        t = chunks[0].start_us
        end = chunks[-1].end_us
        while t < end:
            while current.end_us <= t:
                current = next(chunk_iter)
            samples.append(
                PowerSample(
                    time_us=t,
                    soc_watts=self._noisy(current.soc_watts, noise.power_sigma),
                    aicore_watts=self._noisy(
                        current.aicore_watts, noise.power_sigma
                    ),
                    celsius=current.celsius
                    + (
                        self._rng.normal(0.0, noise.temperature_sigma_celsius)
                        if noise.temperature_sigma_celsius > 0
                        else 0.0
                    ),
                )
            )
            t += interval_us
        return samples

    def measure(self, result: ExecutionResult) -> PowerMeasurement:
        """Noisy aggregate measurement of a full execution.

        Averages are energy-weighted (true averages) with one multiplicative
        sensor error applied, matching how a power meter integrates.
        """
        noise = self._npu.noise
        weights = np.array([c.duration_us for c in result.chunks])
        temps = np.array([c.celsius for c in result.chunks])
        avg_celsius = float(np.average(temps, weights=weights))
        return PowerMeasurement(
            duration_us=result.duration_us,
            soc_avg_watts=self._noisy(result.soc_avg_watts, noise.power_sigma),
            aicore_avg_watts=self._noisy(
                result.aicore_avg_watts, noise.power_sigma
            ),
            avg_celsius=avg_celsius,
        )

    def measure_chunks(self, chunks: Sequence[PowerChunk]) -> PowerMeasurement:
        """Noisy aggregate measurement over an arbitrary chunk sequence."""
        if not chunks:
            raise ProfilingError("no power chunks to measure")
        noise = self._npu.noise
        duration = chunks[-1].end_us - chunks[0].start_us
        weights = np.array([c.duration_us for c in chunks])
        soc = float(np.average([c.soc_watts for c in chunks], weights=weights))
        aicore = float(
            np.average([c.aicore_watts for c in chunks], weights=weights)
        )
        celsius = float(np.average([c.celsius for c in chunks], weights=weights))
        return PowerMeasurement(
            duration_us=duration,
            soc_avg_watts=self._noisy(soc, noise.power_sigma),
            aicore_avg_watts=self._noisy(aicore, noise.power_sigma),
            avg_celsius=celsius,
        )

    def energy_joules(self, result: ExecutionResult) -> tuple[float, float]:
        """Noisy ``(aicore, soc)`` energy readings for a run."""
        noise = self._npu.noise
        return (
            self._noisy(result.aicore_energy_j, noise.power_sigma),
            self._noisy(result.soc_energy_j, noise.power_sigma),
        )

    def measure_operator_power(
        self, result: ExecutionResult
    ) -> dict[str, tuple[float, float]]:
        """Per-operator-name ``(aicore, soc)`` average power readings.

        Attribution works like high-rate sampling synchronised with the
        profiler timeline: each operator's chunks are energy-averaged, then
        one multiplicative sensor error is applied per operator name.
        """
        noise = self._npu.noise
        energy_a: dict[str, float] = {}
        energy_s: dict[str, float] = {}
        time_us: dict[str, float] = {}
        names = {r.index: r.evaluation.spec.name for r in result.records}
        for chunk in result.chunks:
            name = names.get(chunk.op_index)
            if name is None:
                continue
            energy_a[name] = energy_a.get(name, 0.0) + (
                chunk.aicore_watts * chunk.duration_us
            )
            energy_s[name] = energy_s.get(name, 0.0) + (
                chunk.soc_watts * chunk.duration_us
            )
            time_us[name] = time_us.get(name, 0.0) + chunk.duration_us
        readings: dict[str, tuple[float, float]] = {}
        for name, total_us in time_us.items():
            readings[name] = (
                self._noisy(energy_a[name] / total_us, noise.power_sigma),
                self._noisy(energy_s[name] / total_us, noise.power_sigma),
            )
        return readings

    @staticmethod
    def true_average_power(chunks: Sequence[PowerChunk]) -> tuple[float, float]:
        """Noise-free ``(aicore, soc)`` average power over chunks."""
        if not chunks:
            raise ProfilingError("no power chunks given")
        total_us = sum(c.duration_us for c in chunks)
        aicore_j = sum(c.aicore_watts * c.duration_us / US_PER_S for c in chunks)
        soc_j = sum(c.soc_watts * c.duration_us / US_PER_S for c in chunks)
        seconds = total_us / US_PER_S
        return aicore_j / seconds, soc_j / seconds

    def _noisy(self, value: float, sigma: float) -> float:
        if sigma <= 0:
            return value
        return float(value * max(0.5, 1.0 + self._rng.normal(0.0, sigma)))
