"""One-pass multi-frequency profiling over a compiled trace.

The reference cold path profiles a workload one frequency at a time:
``NpuDevice.run_stable`` plays the whole trace per grid point, then the
CANN-style profiler and the power telemetry walk every operator record and
power chunk again, drawing measurement noise scalar by scalar.  With the
compiled-trace engine the run itself is already a cached affine reduction
(:class:`~repro.npu.engine._ConstSolution`), so nearly all of that cost is
the per-record/per-chunk Python re-walk.

:func:`profile_cold_grid` replaces the walk: it evaluates the unique-spec
grid once (:meth:`CompiledTrace.unique_grid`), replays the ``run_stable``
thermal-equilibrium iteration on the cached energy scalars, and applies
the measurement-noise layer as **one vectorised draw per frequency pass**
that reproduces the sequential RNG stream exactly:

* the profiler draws, per record, one duration factor (iff
  ``duration_sigma > 0``) followed by one additive ratio draw per present
  pipe (iff ``utilisation_sigma > 0``) — a ragged but fixed layout, so a
  single ``Generator.normal(0.0, sigma_array)`` call consumes the stream
  identically to the scalar call sequence;
* the telemetry applies one multiplicative error per operator name and
  rail, aicore before soc — a single interleaved ``2K`` draw.

The resulting :class:`~repro.npu.profiler.ProfileReport` objects and
per-name power readings compare equal — floats bit for bit — to what the
sequential ``run_stable -> profile -> measure_operator_power`` loop
produces (``tests/test_pipeline_batched.py`` pins this), which is what
keeps downstream ``GaResult.best_genes`` byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import ProfilingError
from repro.npu.operators import OperatorKind
from repro.npu.profiler import ProfiledOperator, ProfileReport
from repro.npu.vectoreval import SLOT_PIPES
from repro.units import US_PER_S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.npu.device import NpuDevice
    from repro.workloads.trace import Trace

#: ``NpuDevice.run_stable`` defaults, which the optimizer's profiling
#: sweep uses; the grid replay must iterate the same fixed point.
_STABLE_MAX_ROUNDS = 6
_STABLE_TOL_CELSIUS = 0.3


@dataclass(frozen=True)
class BaselineOpArrays:
    """Columnar view of the baseline-frequency profile pass.

    Array-path preprocessing (classification + LFC/HFC staging) consumes
    these instead of walking :class:`ProfiledOperator` objects.  ``present``
    and ``ratios`` are ``(n, 6)`` in :data:`SLOT_PIPES` slot order with
    exact zeros for absent pipes — the same floats the per-op ratio dicts
    would hold, in the same iteration order.
    """

    freq_mhz: float
    start_us: np.ndarray
    duration_us: np.ndarray
    gap_before_us: np.ndarray
    is_compute: np.ndarray
    present: np.ndarray
    ratios: np.ndarray


@dataclass(frozen=True)
class GridProfileData:
    """Batched per-operator profiling data for downstream model fitting.

    ``durations`` holds the *noisy* measured durations, one row per trace
    operator and one column per frequency in ``freqs_mhz`` (ascending) —
    the same numbers as ``reports[f].operators[i].duration_us``.
    ``baseline`` carries the baseline pass as columnar arrays so the
    staging pipeline can skip report materialisation entirely.
    """

    trace_name: str
    names: tuple[str, ...]
    name_ids: np.ndarray
    kinds: tuple[OperatorKind, ...]
    op_types: tuple[str, ...]
    freqs_mhz: tuple[float, ...]
    durations: np.ndarray
    baseline: BaselineOpArrays | None = None

    @property
    def name_count(self) -> int:
        """Distinct operator names, in first-appearance order."""
        return len(self.names)


class _LazyReports:
    """Per-frequency raw profile arrays, materialised into reports on demand.

    Building :class:`ProfiledOperator` objects is the single most
    expensive part of a grid pass, yet the batched cold path never reads
    them — model fitting uses the stacked duration matrix and staging
    uses :class:`BaselineOpArrays`.  The builder therefore stores each
    pass's raw arrays and only runs the object loop when a report is
    actually requested; materialisation uses the exact loop (and the
    exact ``.tolist()`` floats) the eager path used, so the reports
    compare equal bit for bit whenever someone does look.
    """

    def __init__(
        self,
        trace_name: str,
        names: list[str],
        op_types: list[str],
        kinds: list,
        pres_ops: np.ndarray,
        u_starts: np.ndarray,
    ) -> None:
        self._trace_name = trace_name
        self._names = names
        self._op_types = op_types
        self._kinds = kinds
        self._pres_ops = pres_ops
        self._base_l = u_starts.tolist()
        self._raw: dict[float, tuple] = {}
        self._cache: dict[float, ProfileReport] = {}
        self._pipe_lists: list[tuple] | None = None

    @property
    def sweep(self) -> tuple[float, ...]:
        """The swept frequencies, in insertion (ascending) order."""
        return tuple(self._raw)

    def add_pass(
        self,
        freq: float,
        start: np.ndarray,
        noisy_dur: np.ndarray,
        gaps: np.ndarray,
        ratios_flat: np.ndarray,
        total_duration_us: float,
    ) -> None:
        """Record one frequency pass's raw arrays."""
        self._raw[freq] = (start, noisy_dur, gaps, ratios_flat, total_duration_us)

    def _pipes(self) -> list[tuple]:
        # Presence patterns repeat heavily across operators, so intern the
        # per-op pipe tuples by their 6-bit presence code (lazily — only
        # report materialisation needs them).
        if self._pipe_lists is None:
            pres_ops = self._pres_ops
            codes = (pres_ops @ (1 << np.arange(6))).tolist()
            pres_l = pres_ops.tolist()
            pipe_cache: dict[int, tuple] = {}
            pipe_lists = []
            for i, code in enumerate(codes):
                tup = pipe_cache.get(code)
                if tup is None:
                    row = pres_l[i]
                    tup = tuple(SLOT_PIPES[s] for s in range(6) if row[s])
                    pipe_cache[code] = tup
                pipe_lists.append(tup)
            self._pipe_lists = pipe_lists
        return self._pipe_lists

    def report_for(self, freq: float) -> ProfileReport:
        """The full :class:`ProfileReport` of one swept frequency."""
        report = self._cache.get(freq)
        if report is not None:
            return report
        try:
            start, noisy_dur, gaps, ratios_flat, total = self._raw[freq]
        except KeyError:
            raise ProfilingError(
                f"frequency {freq} MHz was not in the profiling sweep"
            ) from None
        names = self._names
        op_types = self._op_types
        kinds = self._kinds
        pipe_lists = self._pipes()
        start_l = start.tolist()
        dur_l = noisy_dur.tolist()
        gap_l = gaps.tolist()
        ratio_l = ratios_flat.tolist()
        base_l = self._base_l
        # Frozen-dataclass __init__ pays object.__setattr__ per field,
        # which dominates this hot loop; installing the instance dict
        # directly produces identical (==, hash, pickle) objects.
        new_op = ProfiledOperator.__new__
        set_dict = object.__setattr__
        operators = []
        for i in range(len(names)):
            pipes = pipe_lists[i]
            lo = base_l[i]
            op = new_op(ProfiledOperator)
            set_dict(
                op,
                "__dict__",
                {
                    "index": i,
                    "name": names[i],
                    "op_type": op_types[i],
                    "kind": kinds[i],
                    "start_us": start_l[i],
                    "duration_us": dur_l[i],
                    "gap_before_us": gap_l[i],
                    "freq_mhz": freq,
                    "ratios": dict(zip(pipes, ratio_l[lo:lo + len(pipes)])),
                    "straddled_switch": False,
                },
            )
            operators.append(op)
        report = ProfileReport(
            trace_name=self._trace_name,
            freq_label_mhz=freq,
            operators=tuple(operators),
            total_duration_us=total,
        )
        self._cache[freq] = report
        return report


class _LazyPowerReadings(Mapping):
    """Per-frequency power readings, materialised as dicts on demand.

    The batched power-table builder consumes the underlying arrays
    directly (``GridProfileResult.power_arrays``); the per-name dict view
    exists for the sequential-sweep API and is only packed when someone
    actually indexes it.  Keys, order and values match the eager dicts.
    """

    __slots__ = ("_names", "_arrays", "_dicts")

    def __init__(
        self,
        names: tuple[str, ...],
        arrays: dict[float, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        self._names = names
        self._arrays = arrays
        self._dicts: dict[float, dict[str, tuple[float, float]]] = {}

    def __getitem__(self, freq: float) -> dict[str, tuple[float, float]]:
        built = self._dicts.get(freq)
        if built is None:
            read_a, read_s = self._arrays[freq]
            read_a_l = read_a.tolist()
            read_s_l = read_s.tolist()
            built = {
                name: (read_a_l[t], read_s_l[t])
                for t, name in enumerate(self._names)
            }
            self._dicts[freq] = built
        return built

    def __iter__(self):
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def __contains__(self, freq: object) -> bool:
        return freq in self._arrays

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # mappings are mutable-equality containers


class GridProfileResult:
    """Everything one cold-path profiling pass produces.

    ``reports`` covers every swept frequency (ascending); telemetry
    readings exist only for the model-fitting frequencies, exactly like
    the sequential sweep.  Reports materialise lazily (and are cached) —
    the batched pipeline reads the stacked ``data`` arrays instead, so a
    cold run that never inspects a report never pays for its objects.
    """

    def __init__(
        self,
        power_readings: "Mapping[float, dict[str, tuple[float, float]]]",
        data: GridProfileData,
        builder: _LazyReports,
        power_arrays: dict[float, tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> None:
        self.power_readings = power_readings
        self.data = data
        self._builder = builder
        #: Per-fit-frequency ``(aicore, soc)`` reading arrays aligned with
        #: ``data.names`` — the power-table builder's zero-copy input.
        self.power_arrays = power_arrays

    @property
    def sweep(self) -> tuple[float, ...]:
        """The swept frequencies, ascending."""
        return self._builder.sweep

    @property
    def reports(self) -> tuple[tuple[float, ProfileReport], ...]:
        """``(freq, report)`` pairs for the full sweep (materialises all)."""
        return tuple(
            (freq, self._builder.report_for(freq))
            for freq in self._builder.sweep
        )

    def report_for(self, freq: float) -> ProfileReport:
        """One swept frequency's report (materialised on first request)."""
        return self._builder.report_for(freq)


def profile_cold_grid(
    device: "NpuDevice",
    trace: "Trace",
    profile_freqs_mhz: Sequence[float],
    baseline_freq_mhz: float,
    profiler_rng: np.random.Generator,
    telemetry_rng: np.random.Generator,
) -> GridProfileResult:
    """Profile ``trace`` across the whole frequency sweep in one pass.

    Args:
        device: the target device; its compiled-trace engine must be on.
        profile_freqs_mhz: the model-fitting frequencies (telemetry runs
            at these).
        baseline_freq_mhz: the maximum-frequency baseline point (profiled
            but only measured if it is also a fitting frequency).
        profiler_rng / telemetry_rng: the *instruments'* generators — the
            draws consume their streams exactly as the sequential sweep
            would.
    """
    engine = device.engine
    if engine is None:  # pragma: no cover - caller gates on this
        raise ProfilingError("grid profiling needs the compiled-trace engine")
    npu = device.npu
    validate = npu.frequencies.validate
    profile_set = {validate(float(f)) for f in profile_freqs_mhz}
    sweep = sorted(profile_set | {validate(float(baseline_freq_mhz))})

    compiled = engine.compiled(trace)
    n = compiled.n_ops
    if n == 0:
        raise ProfilingError(
            f"execution of {trace.name!r} has no operator records"
        )
    grid = compiled.unique_grid(sweep)

    entries = trace.entries
    specs = [entry.spec for entry in entries]
    names = [spec.name for spec in specs]
    op_types = [spec.op_type for spec in specs]
    kinds = [spec.kind for spec in specs]
    name_id_map: dict[str, int] = {}
    first_ops: list[int] = []
    ids_l: list[int] = []
    for i, name in enumerate(names):
        t = name_id_map.get(name)
        if t is None:
            t = len(name_id_map)
            name_id_map[name] = t
            first_ops.append(i)
        ids_l.append(t)
    name_ids = np.asarray(ids_l, dtype=np.intp)
    uniq_names = tuple(name_id_map)
    kinds_by_name = tuple(kinds[i] for i in first_ops)
    op_types_by_name = tuple(op_types[i] for i in first_ops)

    idx = compiled.unique_index
    pres_ops = grid.present[idx]  # (n, 6) bool, frequency-independent
    k_per_op = pres_ops.sum(axis=1).astype(np.intp)
    u_starts = np.concatenate(([0], np.cumsum(k_per_op)))
    builder = _LazyReports(
        trace_name=trace.name,
        names=names,
        op_types=op_types,
        kinds=kinds,
        pres_ops=pres_ops,
        u_starts=u_starts,
    )

    # Flat per-pass noise-sigma layout: per record, one duration draw (iff
    # duration_sigma > 0) then one draw per present pipe (iff
    # utilisation_sigma > 0) — the scalar profiler's exact draw order.
    noise = npu.noise
    dsig = noise.duration_sigma
    usig = noise.utilisation_sigma
    psig = noise.power_sigma
    d_count = 1 if dsig > 0 else 0
    u_counts = k_per_op if usig > 0 else np.zeros(n, dtype=np.intp)
    per_op = d_count + u_counts
    starts = np.concatenate(([0], np.cumsum(per_op)))[:-1]
    total_draws = int(per_op.sum()) if n else 0
    sigma_flat = np.empty(total_draws)
    ratio_pos: np.ndarray | None = None
    if d_count:
        sigma_flat[starts] = dsig
    if usig > 0:
        k_total = int(k_per_op.sum())
        ratio_pos = np.repeat(starts + d_count, k_per_op) + (
            np.arange(k_total) - np.repeat(u_starts[:-1], k_per_op)
        )
        sigma_flat[ratio_pos] = usig

    thermal = npu.thermal
    ambient = thermal.ambient_celsius
    k_cpw = thermal.celsius_per_watt
    tau = thermal.time_constant_us

    baseline_valid = validate(float(baseline_freq_mhz))
    baseline_arrays: BaselineOpArrays | None = None
    power_arrays: dict[float, tuple[np.ndarray, np.ndarray]] = {}
    fit_cols: list[np.ndarray] = []
    fit_freqs: list[float] = []
    for freq in sweep:
        sol = compiled.const_solution(freq, k_cpw, tau)

        # run_stable: iterate to the thermal equilibrium fixed point on
        # the cached affine energy scalars (durations, gaps and all noise
        # draws are independent of the start temperature).
        dur_s = sol.duration / US_PER_S
        start_c = ambient
        delta0 = start_c - ambient
        soc_avg = (sol.e0_soc + sol.e1_soc * delta0) / dur_s
        for _ in range(_STABLE_MAX_ROUNDS):
            equilibrium = thermal.equilibrium_celsius(soc_avg)
            if abs(equilibrium - start_c) <= _STABLE_TOL_CELSIUS:
                break
            start_c = equilibrium
            delta0 = start_c - ambient
            soc_avg = (sol.e0_soc + sol.e1_soc * delta0) / dur_s

        true_dur = sol.end - sol.start
        prev_end = np.concatenate(([0.0], sol.end[:-1]))
        gaps = np.maximum(0.0, sol.start - prev_end)

        # Profiler noise: one vectorised draw for the whole pass.
        j = grid.freq_index(freq)
        util_flat = grid.util[idx, :, j][pres_ops]
        if total_draws:
            draws = profiler_rng.normal(0.0, sigma_flat)
        else:
            draws = None
        if d_count and draws is not None:
            factors = np.maximum(0.5, 1.0 + draws[starts])
            noisy_dur = true_dur * factors
        else:
            noisy_dur = true_dur * 1.0
        if ratio_pos is not None and draws is not None:
            noisy_util = util_flat + draws[ratio_pos]
        else:
            noisy_util = util_flat
        ratios_flat = np.minimum(1.0, np.maximum(0.0, noisy_util))

        builder.add_pass(
            freq, sol.start, noisy_dur, gaps, ratios_flat, sol.duration
        )
        if freq == baseline_valid:
            ratios2d = np.zeros((n, 6))
            ratios2d[pres_ops] = ratios_flat
            baseline_arrays = BaselineOpArrays(
                freq_mhz=freq,
                start_us=sol.start,
                duration_us=noisy_dur,
                gap_before_us=gaps,
                is_compute=np.fromiter(
                    (kind is OperatorKind.COMPUTE for kind in kinds),
                    dtype=bool,
                    count=n,
                ),
                present=pres_ops,
                ratios=ratios2d,
            )

        if freq in profile_set:
            fit_cols.append(noisy_dur)
            fit_freqs.append(freq)
            power_arrays[freq] = _measure_grid_power(
                sol, delta0, name_ids, len(uniq_names), psig, telemetry_rng
            )

    data = GridProfileData(
        trace_name=trace.name,
        names=uniq_names,
        name_ids=name_ids,
        kinds=kinds_by_name,
        op_types=op_types_by_name,
        freqs_mhz=tuple(fit_freqs),
        durations=np.column_stack(fit_cols),
        baseline=baseline_arrays,
    )
    return GridProfileResult(
        power_readings=_LazyPowerReadings(uniq_names, power_arrays),
        data=data,
        builder=builder,
        power_arrays=power_arrays,
    )


def _measure_grid_power(
    sol,
    delta0: float,
    name_ids: np.ndarray,
    n_names: int,
    power_sigma: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-name power readings from a cached constant-frequency solution.

    Mirrors :meth:`PowerTelemetry.measure_operator_power`: energy-average
    each name's operator chunks (idle chunks carry no name), then apply
    one multiplicative sensor error per name and rail, aicore before soc.
    Returns the ``(aicore, soc)`` reading arrays in name-id order; the
    dict view is :class:`_LazyPowerReadings`'s job.
    """
    pos = sol.pos_op
    dt = sol.cend[pos] - sol.cstart[pos]
    ds = sol.th_a[pos] + sol.th_b[pos] * delta0
    watts_a = sol.ca0[pos] + sol.cga[pos] * ds
    watts_s = sol.cs0[pos] + sol.cgs[pos] * ds
    energy_a = np.bincount(name_ids, weights=watts_a * dt, minlength=n_names)
    energy_s = np.bincount(name_ids, weights=watts_s * dt, minlength=n_names)
    time_us = np.bincount(name_ids, weights=dt, minlength=n_names)
    with np.errstate(divide="ignore", invalid="ignore"):
        raw_a = energy_a / time_us
        raw_s = energy_s / time_us
    if power_sigma > 0:
        draws = rng.normal(0.0, np.full(2 * n_names, power_sigma))
        factors = np.maximum(0.5, 1.0 + draws)
        read_a = raw_a * factors[0::2]
        read_s = raw_s * factors[1::2]
    else:
        read_a, read_s = raw_a, raw_s
    return read_a, read_s
