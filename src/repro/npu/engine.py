"""Compiled-trace fast-path execution engine.

:class:`NpuDevice.run` is, in the reference implementation, a pure-Python
per-operator/per-chunk loop: every chunk pays for a timeline query, a
memoised-but-allocating evaluator call, power-model arithmetic, and a
:class:`~repro.npu.device.PowerChunk` allocation.  Every layer above the
device — profiling sweeps, calibration, GA baselines, fault replays,
``repro.serve`` warm-up, the N-device cluster barrier — bottoms out in
that loop, so its constant factor taxes the whole system (the scaling
limiter ONNXim and NeuroScalar identify for cycle-level NPU simulation).

This module lowers a :class:`~repro.workloads.trace.Trace` plus the
device's evaluator **once** into NumPy lookup tables — per-operator
duration and power coefficients per frequency, idle-power rows, host-gap
arrays — and then executes iterations as array scans:

* **Operator-level plans** (a constant :class:`FrequencyTimeline`, or an
  :class:`AnchoredFrequencyPlan` with zero extra delay, where switches
  land exactly on operator starts) run as a single vectorised pass: start
  times come from one ``cumsum``, and the RC thermal recurrence — an
  affine scan ``delta' = a * delta + b`` per chunk — is solved in closed
  form with ``cumprod``/``cumsum``.
* **Wall-clock timelines with switches** run as an O(#chunks) scalar scan
  over the precomputed tables, splitting operators at switch boundaries
  with exactly the reference loop's progress-proportional carry.

Results are numerically equivalent to the reference loop (relative error
well under 1e-9 on duration, energy and temperature; see
``tests/test_engine.py``), and per-operator records / power chunks are
materialised lazily, so consumers that never touch them (stable-state
inner rounds, cluster steps) never pay for their construction.

Stateful or faulty plans — :class:`~repro.npu.faults.FaultyFrequencyPlan`,
:class:`~repro.dvfs.guard.GuardedFrequencyPlan`, anchored plans with a
busy-controller extra delay — are *not* eligible: the device transparently
keeps the reference loop for them.  :func:`set_fast_path_enabled` /
:func:`reference_only` force the reference loop globally (benchmarks and
equivalence tests use this).
"""

from __future__ import annotations

import math
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.npu.device import (
    ExecutionResult,
    IDLE_INDEX,
    OperatorRecord,
    PowerChunk,
)
from repro.npu.setfreq import AnchoredFrequencyPlan, FrequencyTimeline
from repro.npu.spec import NpuSpec
from repro.units import US_PER_S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.trace import Trace

#: Below this cumulative thermal-decay product the closed-form affine scan
#: switches to a sequential scan: dividing by a vanishing ``cumprod`` would
#: amplify rounding (only reachable when chunk lengths rival the thermal
#: time constant times hundreds).
_SCAN_UNDERFLOW = 1e-250

#: Compiled traces cached per engine before dead weak references are pruned.
_COMPILED_CACHE_LIMIT = 64

#: Process-wide compiled-trace cache, shared across engines whose specs
#: are value-identical.  Serving creates a fresh optimizer (device +
#: engine) per cache-missed request, yet lowering a trace is a pure
#: function of (trace, spec): sharing the result across instances removes
#: recompilation — and the unique-grid evaluation cached on it — from the
#: cold path.  Keyed by ``(id(trace), repr(spec))`` with a weakref guard
#: against id reuse; ``repr`` covers every spec field recursively, so
#: equal keys imply equal lowering output bit for bit.
_SHARED_COMPILED: dict[tuple[int, str], tuple] = {}

_FAST_PATH_ENABLED = True


def fast_path_enabled() -> bool:
    """Whether the compiled-trace fast path is globally enabled."""
    return _FAST_PATH_ENABLED


def set_fast_path_enabled(enabled: bool) -> None:
    """Globally enable/disable the fast path (reference loop fallback)."""
    global _FAST_PATH_ENABLED
    _FAST_PATH_ENABLED = bool(enabled)


@contextmanager
def reference_only() -> Iterator[None]:
    """Context manager forcing the reference loop (for A/B comparisons)."""
    previous = _FAST_PATH_ENABLED
    set_fast_path_enabled(False)
    try:
        yield
    finally:
        set_fast_path_enabled(previous)


class _LazySeq(Sequence):
    """Tuple-like sequence that materialises its items on demand.

    Single-item access builds one item (``result.chunks[-1]`` stays O(1));
    iteration and slicing materialise once and cache the tuple.
    """

    __slots__ = ("_size", "_make", "_items")

    def __init__(self, size: int, make: Callable[[int], object]) -> None:
        self._size = size
        self._make = make
        self._items: tuple | None = None

    def _materialise(self) -> tuple:
        if self._items is None:
            make = self._make
            self._items = tuple(make(i) for i in range(self._size))
        return self._items

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._materialise()[index]
        if self._items is not None:
            return self._items[index]
        i = int(index)
        if i < 0:
            i += self._size
        if not 0 <= i < self._size:
            raise IndexError(index)
        return self._make(i)

    def __iter__(self):
        return iter(self._materialise())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list, _LazySeq)):
            return self._materialise() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._materialise())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(len={self._size})"


@dataclass
class EngineStats:
    """Counters describing how the engine has been exercised."""

    fast_path_runs: int = 0
    compiled_traces: int = 0
    column_builds: int = 0


class _FreqColumn:
    """Per-frequency lookup tables over one compiled trace.

    Power is affine in the temperature rise ``delta`` on both rails
    (``P(delta) = P(0) + slope * delta``); the column stores the intercept
    and slope probed from the evaluator at ``delta = 0`` and ``delta = 1``,
    which keeps the engine agnostic of the power model's internals.
    """

    __slots__ = (
        "freq_mhz", "dur", "a0", "ga", "s0", "gs",
        "idle_a0", "idle_ga", "idle_s0", "idle_gs", "_lists",
    )

    def __init__(
        self,
        freq_mhz: float,
        dur: np.ndarray,
        a0: np.ndarray,
        ga: np.ndarray,
        s0: np.ndarray,
        gs: np.ndarray,
        idle_a0: float,
        idle_ga: float,
        idle_s0: float,
        idle_gs: float,
    ) -> None:
        self.freq_mhz = freq_mhz
        self.dur = dur
        self.a0 = a0
        self.ga = ga
        self.s0 = s0
        self.gs = gs
        self.idle_a0 = idle_a0
        self.idle_ga = idle_ga
        self.idle_s0 = idle_s0
        self.idle_gs = idle_gs
        self._lists: tuple[list, list, list, list, list] | None = None

    def as_lists(self) -> tuple[list, list, list, list, list]:
        """Plain-list views of the per-operator tables (scalar scans)."""
        if self._lists is None:
            self._lists = (
                self.dur.tolist(),
                self.a0.tolist(),
                self.ga.tolist(),
                self.s0.tolist(),
                self.gs.tolist(),
            )
        return self._lists


class CompiledTrace:
    """A trace lowered against one evaluator, ready for array execution.

    Construction walks the trace once to collect host-gap arrays and the
    distinct operator characters (the evaluator's own memoisation key);
    frequency columns are then built lazily, one evaluator call per
    distinct character per frequency, and reused across every subsequent
    run of the same trace on the same device.
    """

    def __init__(self, trace: "Trace", evaluator) -> None:
        self._trace = trace
        self._evaluator = evaluator
        entries = trace.entries
        n = len(entries)
        self.n_ops = n
        self.gap = np.array([e.gap_before_us for e in entries], dtype=float)
        self.host = np.array(
            [e.host_interval_us for e in entries], dtype=float
        )
        keys: dict[object, int] = {}
        uniq_specs = []
        uniq_idx = np.empty(n, dtype=np.intp)
        for i, entry in enumerate(entries):
            spec = entry.spec
            if spec.is_compute:
                key = (spec.compute,)
            else:
                key = (spec.kind, spec.fixed_duration_us)
            j = keys.get(key)
            if j is None:
                j = len(uniq_specs)
                keys[key] = j
                uniq_specs.append(spec)
            uniq_idx[i] = j
        self._uniq_specs = uniq_specs
        self._uniq_idx = uniq_idx
        self._columns: dict[float, _FreqColumn] = {}
        self._const_solutions: dict[float, "_ConstSolution"] = {}
        self._grids: dict[tuple[float, ...], object] = {}

    @property
    def trace(self) -> "Trace":
        """The lowered trace."""
        return self._trace

    @property
    def unique_operator_count(self) -> int:
        """Distinct operator characters in the trace."""
        return len(self._uniq_specs)

    @property
    def column_count(self) -> int:
        """Frequency columns built so far."""
        return len(self._columns)

    @property
    def unique_specs(self) -> list:
        """One representative spec per distinct operator character."""
        return self._uniq_specs

    @property
    def unique_index(self) -> np.ndarray:
        """Per-operator row index into :attr:`unique_specs`."""
        return self._uniq_idx

    def evaluation_for(self, op_index: int, freq_mhz: float):
        """The (memoised) ground-truth evaluation backing a record."""
        return self._evaluator.evaluate(
            self._trace.entries[op_index].spec, freq_mhz
        )

    def unique_grid(self, freqs_mhz: Sequence[float]):
        """Vectorised unique-spec evaluation over a whole frequency grid.

        Returns a :class:`repro.npu.vectoreval.UniqueSpecGrid` and installs
        any missing per-frequency columns from it (bit-identical to the
        scalar :meth:`column` build, which stays as the reference path).
        Grids are cached per frequency tuple — the evaluation is a pure
        function of (specs, grid), and repeated cold passes over the same
        sweep (the serving miss path) ask for the same grid every time.
        """
        from repro.npu.vectoreval import evaluate_unique_grid

        grid_key = tuple(float(f) for f in freqs_mhz)
        cached = self._grids.get(grid_key)
        if cached is not None:
            return cached
        grid = evaluate_unique_grid(self._evaluator, self._uniq_specs, freqs_mhz)
        idx = self._uniq_idx
        for j, freq in enumerate(grid.freqs_mhz):
            if freq in self._columns:
                continue
            self._columns[freq] = _FreqColumn(
                freq_mhz=freq,
                dur=grid.dur[idx, j],
                a0=grid.a_cold[idx, j],
                ga=grid.ga[idx, j],
                s0=grid.s_cold[idx, j],
                gs=grid.gs[idx, j],
                idle_a0=float(grid.idle_a0[j]),
                idle_ga=float(grid.idle_ga[j]),
                idle_s0=float(grid.idle_s0[j]),
                idle_gs=float(grid.idle_gs[j]),
            )
        self._grids[grid_key] = grid
        return grid

    def prime_columns(self, freqs_mhz: Sequence[float]) -> None:
        """Batch-build any missing frequency columns in one pass."""
        missing = [
            f
            for f in dict.fromkeys(float(f) for f in freqs_mhz)
            if f not in self._columns
        ]
        if missing:
            self.unique_grid(missing)

    def column(self, freq_mhz: float) -> _FreqColumn:
        """The per-operator tables at one frequency (built on first use)."""
        col = self._columns.get(freq_mhz)
        if col is not None:
            return col
        ev = self._evaluator
        m = len(self._uniq_specs)
        dur_u = np.empty(m)
        a0_u = np.empty(m)
        ga_u = np.empty(m)
        s0_u = np.empty(m)
        gs_u = np.empty(m)
        for j, spec in enumerate(self._uniq_specs):
            evaluation = ev.evaluate(spec, freq_mhz)
            a_cold = ev.aicore_power(evaluation, 0.0)
            s_cold = ev.soc_power(evaluation, 0.0)
            dur_u[j] = evaluation.duration_us
            a0_u[j] = a_cold
            ga_u[j] = ev.aicore_power(evaluation, 1.0) - a_cold
            s0_u[j] = s_cold
            gs_u[j] = ev.soc_power(evaluation, 1.0) - s_cold
        idle_a_cold = ev.idle_aicore_power(freq_mhz, 0.0)
        idle_s_cold = ev.idle_soc_power(freq_mhz, 0.0)
        idx = self._uniq_idx
        col = _FreqColumn(
            freq_mhz=freq_mhz,
            dur=dur_u[idx],
            a0=a0_u[idx],
            ga=ga_u[idx],
            s0=s0_u[idx],
            gs=gs_u[idx],
            idle_a0=idle_a_cold,
            idle_ga=ev.idle_aicore_power(freq_mhz, 1.0) - idle_a_cold,
            idle_s0=idle_s_cold,
            idle_gs=ev.idle_soc_power(freq_mhz, 1.0) - idle_s_cold,
        )
        self._columns[freq_mhz] = col
        return col

    def const_solution(
        self, freq_mhz: float, k: float, tau: float
    ) -> "_ConstSolution":
        """The cached O(1)-per-run reduction of a constant-frequency run."""
        solution = self._const_solutions.get(freq_mhz)
        if solution is None:
            solution = _ConstSolution(self, self.column(freq_mhz), k, tau)
            self._const_solutions[freq_mhz] = solution
        return solution


def _affine_parts(
    dt: np.ndarray,
    s0: np.ndarray,
    gs: np.ndarray,
    k: float,
    tau: float,
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Solve the per-chunk RC recurrence as an affine map of ``delta0``.

    Each chunk holds power constant at its start temperature, then the
    exact RC solution advances the state: with ``e = exp(-dt/tau)`` the
    temperature rise obeys ``delta' = a * delta + b`` where
    ``a = e + k*gs*(1-e)`` and ``b = k*s0*(1-e)``.  The composition of
    affine steps is affine, so every chunk-start temperature rise is
    ``A[i] + B[i] * delta0``; dividing the recurrence through by the
    running product of ``a`` turns the inhomogeneous part into a prefix
    sum, making the whole trajectory two ``cum*`` kernels.  Because the
    parts do not depend on the initial temperature, a constant-frequency
    trace caches them once and every subsequent run is O(1).

    Returns:
        ``(A, B, A_end, B_end)`` with chunk-start rises ``A + B*delta0``
        and final rise ``A_end + B_end*delta0``.
    """
    n = dt.size
    if n == 0:
        return np.empty(0), np.empty(0), 0.0, 1.0
    e = np.exp(-dt / tau)
    one_m = 1.0 - e
    a = e + (k * gs) * one_m
    b = (k * s0) * one_m
    c = np.cumprod(a)
    tail = float(c[-1])
    if (
        not math.isfinite(tail)
        or tail <= _SCAN_UNDERFLOW
        or float(np.min(a)) <= 0.0
    ):
        # Pathological decay (chunks of hundreds of thermal time
        # constants): fall back to the sequential recurrence.
        big_a = np.empty(n)
        big_b = np.empty(n)
        acc_a = 0.0
        acc_b = 1.0
        a_l = a.tolist()
        b_l = b.tolist()
        for i in range(n):
            big_a[i] = acc_a
            big_b[i] = acc_b
            acc_a = a_l[i] * acc_a + b_l[i]
            acc_b = a_l[i] * acc_b
        return big_a, big_b, acc_a, acc_b
    acc = np.cumsum(b / c)
    big_b = np.concatenate(([1.0], c[:-1]))
    big_a = big_b * np.concatenate(([0.0], acc[:-1]))
    return big_a, big_b, tail * float(acc[-1]), tail


class _ConstSolution:
    """Fully-reduced constant-frequency execution of one compiled trace.

    Everything about a constant-frequency run except the initial
    temperature is fixed, and the thermal recurrence is affine in the
    initial rise ``delta0`` (see :func:`_affine_parts`) — so energies and
    the final temperature reduce to cached scalars ``E0 + E1 * delta0``,
    and a repeat run (profiling sweeps, ``run_stable`` rounds, cluster
    baselines) costs O(1) plus lazy O(1)-per-item records and chunks.
    """

    __slots__ = (
        "freq", "duration", "start", "end", "pos_op",
        "cstart", "cend", "cdt", "cop", "ca0", "cga", "cs0", "cgs",
        "th_a", "th_b", "end_a", "end_b",
        "e0_aicore", "e1_aicore", "e0_soc", "e1_soc",
    )

    def __init__(
        self, compiled: "CompiledTrace", col: _FreqColumn,
        k: float, tau: float,
    ) -> None:
        self.freq = col.freq_mhz
        geo = _chunk_geometry(
            compiled, col.dur,
            col.a0, col.ga, col.s0, col.gs,
            np.full(compiled.n_ops, col.idle_a0),
            np.full(compiled.n_ops, col.idle_ga),
            np.full(compiled.n_ops, col.idle_s0),
            np.full(compiled.n_ops, col.idle_gs),
        )
        (self.start, self.end, self.pos_op, self.cstart, self.cend,
         self.cdt, self.cop, self.ca0, self.cga, self.cs0, self.cgs,
         _cfreq_unused) = geo
        self.duration = float(self.end[-1])
        self.th_a, self.th_b, self.end_a, self.end_b = _affine_parts(
            self.cdt, self.cs0, self.cgs, k, tau
        )
        per_dt = self.cdt / US_PER_S
        self.e0_aicore = float(
            np.dot(self.ca0 + self.cga * self.th_a, per_dt)
        )
        self.e1_aicore = float(np.dot(self.cga * self.th_b, per_dt))
        self.e0_soc = float(np.dot(self.cs0 + self.cgs * self.th_a, per_dt))
        self.e1_soc = float(np.dot(self.cgs * self.th_b, per_dt))


#: Cell budget (rows x chunk columns) of one block of the batched
#: constant-frequency build; keeps peak temporaries around tens of MB
#: even for 10k-device fleets on long traces.
_BATCH_CELL_BUDGET = 1_000_000


@dataclass(frozen=True)
class ConstAffineBatch:
    """Per-device affine reductions of one constant-frequency run.

    The fleet-facing form of :class:`_ConstSolution`: every array is
    indexed by device, where devices differ only by an operator-duration
    scale (silicon speed binning) and, downstream, by their initial
    temperature rise ``delta0``.  For device ``i``::

        duration  = duration_us[i]                       (exact)
        E_aicore  = e0_aicore_j[i] + e1_aicore_j[i] * delta0
        E_soc     = e0_soc_j[i]    + e1_soc_j[i]    * delta0
        rise'     = end_a[i]       + end_b[i]       * delta0

    Durations are bitwise identical to the per-device engine path (the
    same scale multiply and the same per-row ``cumsum`` geometry);
    energies and the final rise agree to rounding (~1e-15 relative)
    because only the summation association differs.  The idle-power
    coefficients are frequency-only (device-independent), probed the
    same way as :class:`_FreqColumn`.
    """

    freq_mhz: float
    duration_us: np.ndarray
    e0_aicore_j: np.ndarray
    e1_aicore_j: np.ndarray
    e0_soc_j: np.ndarray
    e1_soc_j: np.ndarray
    end_a: np.ndarray
    end_b: np.ndarray
    idle_aicore_w0: float
    idle_aicore_gain: float
    idle_soc_w0: float
    idle_soc_gain: float

    @property
    def n_devices(self) -> int:
        """How many device rows the batch covers."""
        return self.duration_us.size


def _batched_block(
    compiled: "CompiledTrace",
    col: _FreqColumn,
    scales: np.ndarray,
    k: float,
    tau: float,
) -> tuple[np.ndarray, ...]:
    """One block of the batched constant-frequency reduction.

    Lays every device row out as the rectangular chunk interleave
    ``[idle_0, op_0, idle_1, op_1, ...]``: rows without a wait before
    operator ``i`` simply get a zero-length idle chunk there, which is
    an exact identity of both the affine thermal scan (``a = 1``,
    ``b = 0``) and the energy sum (``dt = 0``), so the rectangular
    layout reproduces the per-device compressed layout bit for bit.
    """
    n = compiled.n_ops
    d = col.dur[None, :] * scales[:, None]
    rows = scales.size
    prev_d = np.concatenate([np.zeros((rows, 1)), d[:, :-1]], axis=1)
    start = np.cumsum(
        np.maximum(prev_d + compiled.gap[None, :], compiled.host[None, :]),
        axis=1,
    )
    end = start + d
    duration = end[:, -1].copy()
    prev_end = np.concatenate([np.zeros((rows, 1)), end[:, :-1]], axis=1)
    idle_dt = start - prev_end

    cdt = np.empty((rows, 2 * n))
    cdt[:, 0::2] = idle_dt
    cdt[:, 1::2] = d
    ca0 = np.empty(2 * n)
    cga = np.empty(2 * n)
    cs0 = np.empty(2 * n)
    cgs = np.empty(2 * n)
    ca0[0::2] = col.idle_a0
    cga[0::2] = col.idle_ga
    cs0[0::2] = col.idle_s0
    cgs[0::2] = col.idle_gs
    ca0[1::2] = col.a0
    cga[1::2] = col.ga
    cs0[1::2] = col.s0
    cgs[1::2] = col.gs

    e = np.exp(-cdt / tau)
    one_m = 1.0 - e
    a = e + (k * cgs[None, :]) * one_m
    b = (k * cs0[None, :]) * one_m
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        c = np.cumprod(a, axis=1)
        tail = c[:, -1]
        bad = (
            ~np.isfinite(tail)
            | (tail <= _SCAN_UNDERFLOW)
            | (np.min(a, axis=1) <= 0.0)
        )
        acc = np.cumsum(b / c, axis=1)
    th_b = np.concatenate([np.ones((rows, 1)), c[:, :-1]], axis=1)
    th_a = th_b * np.concatenate([np.zeros((rows, 1)), acc[:, :-1]], axis=1)
    end_a = tail * acc[:, -1]
    end_b = tail.copy()
    for i in np.flatnonzero(bad):
        # Pathological decay on this row: same sequential fallback as
        # the per-device path (see _affine_parts).
        th_a[i], th_b[i], end_a[i], end_b[i] = _affine_parts(
            cdt[i], cs0, cgs, k, tau
        )

    per_dt = cdt / US_PER_S
    e0_aicore = ((ca0[None, :] + cga[None, :] * th_a) * per_dt).sum(axis=1)
    e1_aicore = ((cga[None, :] * th_b) * per_dt).sum(axis=1)
    e0_soc = ((cs0[None, :] + cgs[None, :] * th_a) * per_dt).sum(axis=1)
    e1_soc = ((cgs[None, :] * th_b) * per_dt).sum(axis=1)
    return duration, e0_aicore, e1_aicore, e0_soc, e1_soc, end_a, end_b


def batched_const_durations(
    compiled: "CompiledTrace",
    freq_mhz: float,
    duration_scales: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Per-device constant-frequency durations, one row per scale.

    Bitwise identical to running each device through the engine: the
    per-device path multiplies each operator's duration by the device's
    scale and the chunk geometry is a per-row ``cumsum``, both of which
    the 2D broadcast reproduces element for element.
    """
    scales = np.ascontiguousarray(duration_scales, dtype=float)
    if compiled.n_ops == 0:
        return np.zeros(scales.size)
    col = compiled.column(freq_mhz)
    out = np.empty(scales.size)
    block = max(1, _BATCH_CELL_BUDGET // max(1, compiled.n_ops))
    for lo in range(0, scales.size, block):
        s = scales[lo : lo + block, None]
        d = col.dur[None, :] * s
        prev_d = np.concatenate([np.zeros((s.size, 1)), d[:, :-1]], axis=1)
        start = np.cumsum(
            np.maximum(
                prev_d + compiled.gap[None, :], compiled.host[None, :]
            ),
            axis=1,
        )
        out[lo : lo + block] = start[:, -1] + d[:, -1]
    return out


def batched_const_solutions(
    compiled: "CompiledTrace",
    freq_mhz: float,
    duration_scales: Sequence[float] | np.ndarray,
    k: float,
    tau: float,
) -> ConstAffineBatch:
    """Stack every device's constant-frequency affine solution.

    The fleet analogue of :meth:`CompiledTrace.const_solution`: one call
    reduces a whole device population (each with its own operator-
    duration scale) to ``(devices,)`` arrays of affine scalars, built in
    blocks of ~:data:`_BATCH_CELL_BUDGET` cells so peak memory stays
    bounded at any fleet size.  ``k``/``tau`` are the shared RC thermal
    constants; per-board ambients do not enter (the recurrence lives in
    temperature-rise space), so one batch serves boards in warm and cool
    rack positions alike.
    """
    scales = np.ascontiguousarray(duration_scales, dtype=float)
    rows = scales.size
    col = compiled.column(freq_mhz)
    if compiled.n_ops == 0:
        zero = np.zeros(rows)
        return ConstAffineBatch(
            freq_mhz=col.freq_mhz,
            duration_us=zero,
            e0_aicore_j=zero.copy(),
            e1_aicore_j=zero.copy(),
            e0_soc_j=zero.copy(),
            e1_soc_j=zero.copy(),
            end_a=zero.copy(),
            end_b=np.ones(rows),
            idle_aicore_w0=col.idle_a0,
            idle_aicore_gain=col.idle_ga,
            idle_soc_w0=col.idle_s0,
            idle_soc_gain=col.idle_gs,
        )
    parts = [np.empty(rows) for _ in range(7)]
    block = max(1, _BATCH_CELL_BUDGET // (2 * compiled.n_ops))
    for lo in range(0, rows, block):
        chunk = _batched_block(
            compiled, col, scales[lo : lo + block], k, tau
        )
        for dest, src in zip(parts, chunk):
            dest[lo : lo + src.size] = src
    return ConstAffineBatch(
        freq_mhz=col.freq_mhz,
        duration_us=parts[0],
        e0_aicore_j=parts[1],
        e1_aicore_j=parts[2],
        e0_soc_j=parts[3],
        e1_soc_j=parts[4],
        end_a=parts[5],
        end_b=parts[6],
        idle_aicore_w0=col.idle_a0,
        idle_aicore_gain=col.idle_ga,
        idle_soc_w0=col.idle_s0,
        idle_soc_gain=col.idle_gs,
    )


def _chunk_geometry(
    compiled: "CompiledTrace",
    d: np.ndarray,
    a0: np.ndarray,
    ga: np.ndarray,
    s0: np.ndarray,
    gs: np.ndarray,
    idle_a0: np.ndarray,
    idle_ga: np.ndarray,
    idle_s0: np.ndarray,
    idle_gs: np.ndarray,
    fop: np.ndarray | None = None,
    fgap: np.ndarray | None = None,
) -> tuple:
    """Lay out the chronological chunk arrays for per-op-constant runs.

    Start times follow the reference's gap/host-pacing rule
    ``start[i] = start[i-1] + max(d[i-1] + gap[i], host[i])`` in
    prefix-sum form; idle chunks are interleaved before the operators
    that have a positive wait.
    """
    n = compiled.n_ops
    prev_d = np.concatenate(([0.0], d[:-1]))
    start = np.cumsum(np.maximum(prev_d + compiled.gap, compiled.host))
    end = start + d
    prev_end = np.concatenate(([0.0], end[:-1]))
    idle_dt = start - prev_end
    has_idle = idle_dt > 0.0
    n_idle = int(np.count_nonzero(has_idle))

    n_chunks = n + n_idle
    pos_op = np.arange(n) + np.cumsum(has_idle)
    pos_idle = (pos_op - 1)[has_idle]
    cdt = np.empty(n_chunks)
    ca0 = np.empty(n_chunks)
    cga = np.empty(n_chunks)
    cs0 = np.empty(n_chunks)
    cgs = np.empty(n_chunks)
    cstart = np.empty(n_chunks)
    cend = np.empty(n_chunks)
    cop = np.empty(n_chunks, dtype=np.intp)
    cfreq = np.empty(n_chunks) if fop is not None else None
    cdt[pos_op] = end - start
    ca0[pos_op] = a0
    cga[pos_op] = ga
    cs0[pos_op] = s0
    cgs[pos_op] = gs
    cstart[pos_op] = start
    cend[pos_op] = end
    cop[pos_op] = np.arange(n)
    if cfreq is not None:
        cfreq[pos_op] = fop
    if n_idle:
        cdt[pos_idle] = idle_dt[has_idle]
        ca0[pos_idle] = idle_a0[has_idle]
        cga[pos_idle] = idle_ga[has_idle]
        cs0[pos_idle] = idle_s0[has_idle]
        cgs[pos_idle] = idle_gs[has_idle]
        cstart[pos_idle] = prev_end[has_idle]
        cend[pos_idle] = start[has_idle]
        cop[pos_idle] = IDLE_INDEX
        if cfreq is not None:
            cfreq[pos_idle] = fgap[has_idle]
    return (
        start, end, pos_op, cstart, cend, cdt, cop,
        ca0, cga, cs0, cgs, cfreq,
    )


class _ChunkArrays:
    """Column-oriented chunk storage backing the lazy ``chunks`` view."""

    __slots__ = ("start", "end", "freq", "aw", "sw", "celsius", "op")

    def __init__(self, start, end, freq, aw, sw, celsius, op) -> None:
        self.start = start
        self.end = end
        self.freq = freq
        self.aw = aw
        self.sw = sw
        self.celsius = celsius
        self.op = op

    def chunk(self, i: int) -> PowerChunk:
        return PowerChunk(
            start_us=float(self.start[i]),
            end_us=float(self.end[i]),
            freq_mhz=float(self.freq[i]),
            aicore_watts=float(self.aw[i]),
            soc_watts=float(self.sw[i]),
            celsius=float(self.celsius[i]),
            op_index=int(self.op[i]),
        )

    def lazy(self) -> _LazySeq:
        return _LazySeq(len(self.start), self.chunk)


class _RecordArrays:
    """Column-oriented record storage backing the lazy ``records`` view."""

    __slots__ = ("compiled", "start", "end", "f0", "f1", "aj", "sj")

    def __init__(self, compiled, start, end, f0, f1, aj, sj) -> None:
        self.compiled = compiled
        self.start = start
        self.end = end
        self.f0 = f0
        self.f1 = f1
        self.aj = aj
        self.sj = sj

    def record(self, i: int) -> OperatorRecord:
        start_freq = float(self.f0[i])
        return OperatorRecord(
            index=i,
            evaluation=self.compiled.evaluation_for(i, start_freq),
            start_us=float(self.start[i]),
            end_us=float(self.end[i]),
            start_freq_mhz=start_freq,
            end_freq_mhz=float(self.f1[i]),
            aicore_energy_j=float(self.aj[i]),
            soc_energy_j=float(self.sj[i]),
        )

    def lazy(self) -> _LazySeq:
        return _LazySeq(len(self.start), self.record)


class TraceEngine:
    """Compiled-trace executor attached to one :class:`NpuDevice`."""

    def __init__(self, npu: NpuSpec, evaluator) -> None:
        self._npu = npu
        self._evaluator = evaluator
        self._compiled: dict[int, tuple[weakref.ref, CompiledTrace]] = {}
        self._spec_repr: str | None = None
        self.stats = EngineStats()

    @property
    def npu(self) -> NpuSpec:
        """The hardware description executions are integrated against."""
        return self._npu

    def supports(self, timeline: object) -> bool:
        """Whether a plan is eligible for the fast path.

        Exactly a plain wall-clock :class:`FrequencyTimeline` (constant or
        switching), or exactly a plain :class:`AnchoredFrequencyPlan` with
        zero extra controller delay.  Subclasses — the fault-injecting and
        guarded plans — are stateful in ways the compiler must not assume
        away, and keep the reference loop.
        """
        if type(timeline) is FrequencyTimeline:
            return True
        return (
            type(timeline) is AnchoredFrequencyPlan
            and timeline.extra_delay_us == 0.0
        )

    def active_for(self, timeline: object) -> bool:
        """``supports`` gated by the global enable flag."""
        return _FAST_PATH_ENABLED and self.supports(timeline)

    def execute(
        self,
        trace: "Trace",
        timeline: FrequencyTimeline | AnchoredFrequencyPlan,
        initial_celsius: float | None = None,
    ) -> ExecutionResult:
        """Run one iteration on the fast path (caller checked eligibility)."""
        compiled = self.compiled(trace)
        thermal = self._npu.thermal
        celsius0 = (
            thermal.ambient_celsius
            if initial_celsius is None
            else float(initial_celsius)
        )
        self.stats.fast_path_runs += 1
        if type(timeline) is AnchoredFrequencyPlan:
            gap_freqs, op_freqs = timeline.compile_op_schedule(compiled.n_ops)
            return self._run_oplevel(compiled, op_freqs, gap_freqs, celsius0)
        if timeline.switch_count == 0:
            return self._run_constant(
                compiled, timeline.initial_mhz, celsius0
            )
        return self._run_scan(compiled, timeline, celsius0)

    def compiled(self, trace: "Trace") -> CompiledTrace:
        """The (cached) lowering of ``trace`` against this device.

        Misses consult the process-wide cache before compiling: another
        engine with a value-identical spec may already have lowered this
        trace, and lowering is pure, so adopting its result (evaluator
        included) changes nothing downstream.  ``stats.compiled_traces``
        counts this engine's cache misses either way.
        """
        key = id(trace)
        cached = self._compiled.get(key)
        if cached is not None:
            ref, compiled = cached
            if ref() is trace:
                return compiled
        if len(self._compiled) >= _COMPILED_CACHE_LIMIT:
            self._compiled = {
                k: (ref, comp)
                for k, (ref, comp) in self._compiled.items()
                if ref() is not None
            }
            while len(self._compiled) >= _COMPILED_CACHE_LIMIT:
                self._compiled.pop(next(iter(self._compiled)))
        spec_key = self._spec_key()
        shared_key = (key, spec_key) if spec_key is not None else None
        if shared_key is not None:
            shared = _SHARED_COMPILED.get(shared_key)
            if shared is not None:
                ref, compiled = shared
                if ref() is trace:
                    self.stats.compiled_traces += 1
                    self._compiled[key] = (ref, compiled)
                    return compiled
        compiled = CompiledTrace(trace, self._evaluator)
        self.stats.compiled_traces += 1
        self._compiled[key] = (weakref.ref(trace), compiled)
        if shared_key is not None:
            if len(_SHARED_COMPILED) >= _COMPILED_CACHE_LIMIT:
                stale = [
                    k
                    for k, (ref, _) in _SHARED_COMPILED.items()
                    if ref() is None
                ]
                for k in stale:
                    del _SHARED_COMPILED[k]
                while len(_SHARED_COMPILED) >= _COMPILED_CACHE_LIMIT:
                    _SHARED_COMPILED.pop(next(iter(_SHARED_COMPILED)))
            _SHARED_COMPILED[shared_key] = self._compiled[key]
        return compiled

    def _spec_key(self) -> str | None:
        """Value key of this engine for the process-wide compiled cache.

        ``None`` (never share) unless the evaluator is a plain
        :class:`GroundTruthEvaluator` — wrapped evaluators (e.g. the
        cluster's per-device duration scaling) change the lowering
        output, and their state is not captured by any value key.  The
        key covers both the engine spec (thermal constants baked into
        cached const solutions) and the evaluator spec (which columns
        and grids are computed from) so equal keys imply bit-identical
        compiled output.
        """
        spec_key = self._spec_repr
        if spec_key is None:
            from repro.npu.execution import GroundTruthEvaluator

            if type(self._evaluator) is not GroundTruthEvaluator:
                spec_key = ""
            else:
                spec_key = (
                    repr(self._npu) + "\x00" + repr(self._evaluator.npu)
                )
            self._spec_repr = spec_key
        return spec_key or None

    # ------------------------------------------------------------------
    # Operator-level vectorised paths
    # ------------------------------------------------------------------

    def _run_constant(
        self,
        compiled: CompiledTrace,
        freq_mhz: float,
        celsius0: float,
    ) -> ExecutionResult:
        """O(1) execution of a constant-frequency run from the cached
        affine reduction (see :class:`_ConstSolution`)."""
        thermal = self._npu.thermal
        ambient = thermal.ambient_celsius
        sol = compiled.const_solution(
            freq_mhz, thermal.celsius_per_watt, thermal.time_constant_us
        )
        delta0 = celsius0 - ambient

        def chunk(i: int) -> PowerChunk:
            ds = sol.th_a[i] + sol.th_b[i] * delta0
            return PowerChunk(
                start_us=float(sol.cstart[i]),
                end_us=float(sol.cend[i]),
                freq_mhz=sol.freq,
                aicore_watts=float(sol.ca0[i] + sol.cga[i] * ds),
                soc_watts=float(sol.cs0[i] + sol.cgs[i] * ds),
                celsius=float(ambient + ds),
                op_index=int(sol.cop[i]),
            )

        def record(i: int) -> OperatorRecord:
            j = sol.pos_op[i]
            ds = sol.th_a[j] + sol.th_b[j] * delta0
            dt = float(sol.cdt[j])
            return OperatorRecord(
                index=i,
                evaluation=compiled.evaluation_for(i, sol.freq),
                start_us=float(sol.start[i]),
                end_us=float(sol.end[i]),
                start_freq_mhz=sol.freq,
                end_freq_mhz=sol.freq,
                aicore_energy_j=float(sol.ca0[j] + sol.cga[j] * ds)
                * dt / US_PER_S,
                soc_energy_j=float(sol.cs0[j] + sol.cgs[j] * ds)
                * dt / US_PER_S,
            )

        return ExecutionResult(
            trace_name=compiled.trace.name,
            duration_us=sol.duration,
            aicore_energy_j=sol.e0_aicore + sol.e1_aicore * delta0,
            soc_energy_j=sol.e0_soc + sol.e1_soc * delta0,
            records=_LazySeq(compiled.n_ops, record),
            chunks=_LazySeq(len(sol.cdt), chunk),
            start_celsius=celsius0,
            end_celsius=ambient + (sol.end_a + sol.end_b * delta0),
        )

    def _run_oplevel(
        self,
        compiled: CompiledTrace,
        op_freqs: Sequence[float],
        gap_freqs: Sequence[float],
        celsius0: float,
    ) -> ExecutionResult:
        """One vectorised pass for per-operator-constant frequencies."""
        n = compiled.n_ops
        fop = np.asarray(op_freqs, dtype=float)
        fgap = np.asarray(gap_freqs, dtype=float)
        distinct = set(fop.tolist()) | set(fgap.tolist())
        cols = {f: compiled.column(f) for f in distinct}
        if len(cols) == 1:
            col = next(iter(cols.values()))
            d, a0, ga, s0, gs = col.dur, col.a0, col.ga, col.s0, col.gs
            idle_a0 = np.full(n, col.idle_a0)
            idle_ga = np.full(n, col.idle_ga)
            idle_s0 = np.full(n, col.idle_s0)
            idle_gs = np.full(n, col.idle_gs)
        else:
            d = np.empty(n)
            a0 = np.empty(n)
            ga = np.empty(n)
            s0 = np.empty(n)
            gs = np.empty(n)
            idle_a0 = np.empty(n)
            idle_ga = np.empty(n)
            idle_s0 = np.empty(n)
            idle_gs = np.empty(n)
            for f, col in cols.items():
                mask = fop == f
                if mask.any():
                    d[mask] = col.dur[mask]
                    a0[mask] = col.a0[mask]
                    ga[mask] = col.ga[mask]
                    s0[mask] = col.s0[mask]
                    gs[mask] = col.gs[mask]
                gmask = fgap == f
                if gmask.any():
                    idle_a0[gmask] = col.idle_a0
                    idle_ga[gmask] = col.idle_ga
                    idle_s0[gmask] = col.idle_s0
                    idle_gs[gmask] = col.idle_gs

        (start, end, pos_op, cstart, cend, cdt, cop,
         ca0, cga, cs0, cgs, cfreq) = _chunk_geometry(
            compiled, d, a0, ga, s0, gs,
            idle_a0, idle_ga, idle_s0, idle_gs,
            fop=fop, fgap=fgap,
        )

        thermal = self._npu.thermal
        delta0 = celsius0 - thermal.ambient_celsius
        th_a, th_b, end_a, end_b = _affine_parts(
            cdt, cs0, cgs,
            thermal.celsius_per_watt, thermal.time_constant_us,
        )
        delta_start = th_a + th_b * delta0
        caw = ca0 + cga * delta_start
        csw = cs0 + cgs * delta_start
        aicore_j = float(np.dot(caw, cdt)) / US_PER_S
        soc_j = float(np.dot(csw, cdt)) / US_PER_S

        chunks = _ChunkArrays(
            cstart, cend, cfreq, caw, csw,
            thermal.ambient_celsius + delta_start, cop,
        )
        op_aj = (caw[pos_op] * cdt[pos_op]) / US_PER_S
        op_sj = (csw[pos_op] * cdt[pos_op]) / US_PER_S
        records = _RecordArrays(compiled, start, end, fop, fop, op_aj, op_sj)
        return ExecutionResult(
            trace_name=compiled.trace.name,
            duration_us=float(end[-1]),
            aicore_energy_j=aicore_j,
            soc_energy_j=soc_j,
            records=records.lazy(),
            chunks=chunks.lazy(),
            start_celsius=celsius0,
            end_celsius=float(
                thermal.ambient_celsius + (end_a + end_b * delta0)
            ),
        )

    # ------------------------------------------------------------------
    # Wall-clock switching-timeline scan
    # ------------------------------------------------------------------

    def _run_scan(
        self,
        compiled: CompiledTrace,
        timeline: FrequencyTimeline,
        celsius0: float,
    ) -> ExecutionResult:
        """O(#chunks) scan splitting operators at wall-clock switches."""
        switches = timeline.switches
        times = [s.time_us for s in switches]
        freqs_after = [s.freq_mhz for s in switches]
        n_switches = len(times)
        distinct = {timeline.initial_mhz, *freqs_after}
        tables = {}
        for f in distinct:
            col = compiled.column(f)
            tables[f] = (col, *col.as_lists())

        thermal = self._npu.thermal
        ambient = thermal.ambient_celsius
        k = thermal.celsius_per_watt
        tau = thermal.time_constant_us
        exp = math.exp
        gap_l = compiled.gap.tolist()
        host_l = compiled.host.tolist()
        n = compiled.n_ops

        cstart: list[float] = []
        cend: list[float] = []
        cfreq: list[float] = []
        caw: list[float] = []
        csw: list[float] = []
        ccel: list[float] = []
        cop: list[int] = []
        r_start: list[float] = []
        r_end: list[float] = []
        r_f0: list[float] = []
        r_f1: list[float] = []
        r_aj: list[float] = []
        r_sj: list[float] = []

        celsius = celsius0
        clock = 0.0
        ptr = 0  # switches with effect time <= clock
        freq = timeline.initial_mhz
        aicore_energy = 0.0
        soc_energy = 0.0
        previous_start = 0.0

        for i in range(n):
            idle_until = clock + gap_l[i]
            host = host_l[i]
            if host > 0:
                paced = previous_start + host
                if paced > idle_until:
                    idle_until = paced
            while clock < idle_until:
                while ptr < n_switches and times[ptr] <= clock:
                    freq = freqs_after[ptr]
                    ptr += 1
                chunk_end = (
                    min(idle_until, times[ptr])
                    if ptr < n_switches
                    else idle_until
                )
                dt = chunk_end - clock
                col = tables[freq][0]
                delta = celsius - ambient
                aw = col.idle_a0 + col.idle_ga * delta
                sw = col.idle_s0 + col.idle_gs * delta
                cstart.append(clock)
                cend.append(chunk_end)
                cfreq.append(freq)
                caw.append(aw)
                csw.append(sw)
                ccel.append(celsius)
                cop.append(IDLE_INDEX)
                aicore_energy += aw * dt / US_PER_S
                soc_energy += sw * dt / US_PER_S
                target = ambient + k * sw
                celsius = target + (celsius - target) * exp(-dt / tau)
                clock = chunk_end
            previous_start = clock
            # Operator: split at switch boundaries, carrying progress.
            start_us = clock
            progress = 0.0
            op_aj = 0.0
            op_sj = 0.0
            start_freq = None
            while progress < 1.0:
                while ptr < n_switches and times[ptr] <= clock:
                    freq = freqs_after[ptr]
                    ptr += 1
                if start_freq is None:
                    start_freq = freq
                _, dur_l, a0_l, ga_l, s0_l, gs_l = tables[freq]
                duration = dur_l[i]
                remaining = (1.0 - progress) * duration
                if ptr < n_switches and times[ptr] < clock + remaining:
                    chunk_end = times[ptr]
                    progress += (chunk_end - clock) / duration
                else:
                    chunk_end = clock + remaining
                    progress = 1.0
                dt = chunk_end - clock
                delta = celsius - ambient
                aw = a0_l[i] + ga_l[i] * delta
                sw = s0_l[i] + gs_l[i] * delta
                cstart.append(clock)
                cend.append(chunk_end)
                cfreq.append(freq)
                caw.append(aw)
                csw.append(sw)
                ccel.append(celsius)
                cop.append(i)
                op_aj += aw * dt / US_PER_S
                op_sj += sw * dt / US_PER_S
                target = ambient + k * sw
                celsius = target + (celsius - target) * exp(-dt / tau)
                clock = chunk_end
            aicore_energy += op_aj
            soc_energy += op_sj
            r_start.append(start_us)
            r_end.append(clock)
            r_f0.append(start_freq)
            r_f1.append(freq)
            r_aj.append(op_aj)
            r_sj.append(op_sj)

        chunks = _ChunkArrays(cstart, cend, cfreq, caw, csw, ccel, cop)
        records = _RecordArrays(
            compiled, r_start, r_end, r_f0, r_f1, r_aj, r_sj
        )
        return ExecutionResult(
            trace_name=compiled.trace.name,
            duration_us=clock,
            aicore_energy_j=aicore_energy,
            soc_energy_j=soc_energy,
            records=records.lazy(),
            chunks=chunks.lazy(),
            start_celsius=celsius0,
            end_celsius=celsius,
        )
