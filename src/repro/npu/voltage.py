"""Voltage/frequency relationship of the simulated NPU (paper Fig. 9).

The Ascend firmware adapts voltage automatically when frequency changes:
below a knee frequency (1300 MHz) the voltage is flat; above it, voltage
rises linearly with frequency.  This mirrors the positive V-f correlation
reported for NVIDIA GPUs as well (Sect. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VoltageCurve:
    """Piecewise-linear voltage curve ``V(f)``.

    Attributes:
        flat_volts: supply voltage below the knee, in volts.
        knee_mhz: frequency at which voltage starts rising.
        slope_volts_per_mhz: linear slope above the knee.
    """

    flat_volts: float = 0.780
    knee_mhz: float = 1300.0
    slope_volts_per_mhz: float = 0.00034

    def __post_init__(self) -> None:
        if self.flat_volts <= 0:
            raise ConfigurationError(f"flat voltage must be positive: {self.flat_volts}")
        if self.knee_mhz <= 0:
            raise ConfigurationError(f"knee frequency must be positive: {self.knee_mhz}")
        if self.slope_volts_per_mhz < 0:
            raise ConfigurationError(
                f"voltage slope must be non-negative: {self.slope_volts_per_mhz}"
            )

    def volts(self, freq_mhz: float | np.ndarray) -> float | np.ndarray:
        """Supply voltage at ``freq_mhz``; vectorised over arrays."""
        if isinstance(freq_mhz, (float, int)):
            # Scalar fast path: identical arithmetic to the array path,
            # without ndarray round-trips (this sits under every
            # per-chunk power query).
            if freq_mhz <= 0:
                raise ConfigurationError("frequency must be positive")
            return self.flat_volts + self.slope_volts_per_mhz * max(
                0.0, freq_mhz - self.knee_mhz
            )
        f = np.asarray(freq_mhz, dtype=float)
        if np.any(f <= 0):
            raise ConfigurationError("frequency must be positive")
        v = self.flat_volts + self.slope_volts_per_mhz * np.maximum(
            0.0, f - self.knee_mhz
        )
        if np.isscalar(freq_mhz) or f.ndim == 0:
            return float(v)
        return v

    def table(self, freqs_mhz: tuple[float, ...]) -> list[tuple[float, float]]:
        """``(frequency MHz, voltage V)`` rows, e.g. to regenerate Fig. 9."""
        return [(float(f), float(self.volts(f))) for f in freqs_mhz]
