"""Vectorised multi-spec, multi-frequency operator evaluation.

:func:`evaluate_unique_grid` computes, for a list of (typically unique)
operator specs and a frequency grid, exactly the quantities
:meth:`repro.npu.execution.GroundTruthEvaluator._evaluate_uncached` and the
compiled-trace column probes derive one operator at a time — durations,
per-pipe utilisation, bandwidth utilisation, effective alpha, and the
cold/temperature-gain power decomposition — as ``(spec, freq)`` matrices in
a single NumPy pass.

Bit-identity with the scalar path is a hard requirement (the batched cold
path must reproduce :class:`~repro.dvfs.ga.GaResult.best_genes` byte for
byte), so every expression below mirrors the scalar evaluation order and
associativity:

* ``smooth_max``/``transfer_cycles`` keep the factored ``hi * (1 +
  (lo/hi)^p)^(1/p)`` form and the trailing ``T0 * f`` term;
* the closed forms of Eqs. (5)-(8) keep the scalar operand order,
  including the integer-derived ``n - 1`` / ``ceil(n/2)`` coefficients;
* per-pipe busy cycles use the :func:`analytical_busy_stall` union law
  (Fig. 8 clipping included) slot by slot in the busy-dict insertion
  order MTE2 -> CUBE -> VECTOR -> SCALAR -> MTE1 -> MTE3;
* ``effective_alpha`` accumulates the six slots sequentially in that same
  order (absent slots contribute an exact ``+0.0``, which is a bitwise
  no-op for the non-negative partial sums);
* the power probes evaluate the full cold and hot expressions and
  subtract, exactly like the engine's column builder.

The equivalence suite pins grid columns against scalar ``column()`` /
``evaluate()`` results bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.npu.operators import OperatorSpec
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.units import gbps_to_bytes_per_us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.npu.execution import GroundTruthEvaluator

#: Slot layout of the per-spec pipe tables.  This is the insertion order of
#: the scalar evaluator's busy/utilisation dicts (``analytical_busy_stall``
#: inserts MTE2 first, then the core pipes in ``_CORE_PIPE_ORDER``, then
#: MTE3), which the profiler's noise layer and ``effective_alpha`` both
#: iterate in.
SLOT_PIPES: tuple[Pipe, ...] = (
    Pipe.MTE2,
    Pipe.CUBE,
    Pipe.VECTOR,
    Pipe.SCALAR,
    Pipe.MTE1,
    Pipe.MTE3,
)

#: Indices of the core-domain pipes within :data:`SLOT_PIPES`.
_CORE_SLOTS: tuple[int, ...] = (1, 2, 3, 4)

_SCENARIO_CODE: dict[Scenario, int] = {
    Scenario.PINGPONG_FREE_INDEPENDENT: 0,
    Scenario.PINGPONG_FREE_DEPENDENT: 1,
    Scenario.PINGPONG_INDEPENDENT: 2,
    Scenario.PINGPONG_DEPENDENT: 3,
}


@dataclass(frozen=True)
class UniqueSpecGrid:
    """Dense ``(spec, freq)`` evaluation tables for one frequency grid.

    All 2-D arrays are indexed ``[spec_row, freq_column]``; ``util`` is
    ``[spec_row, slot, freq_column]`` with slots per :data:`SLOT_PIPES`
    and exact zeros for absent pipes.  ``present`` marks which slots the
    scalar utilisation dict would contain (frequency-independent: MTE2
    iff the operator loads bytes, a core pipe iff its mix fraction is
    positive, MTE3 iff it stores bytes).
    """

    freqs_mhz: tuple[float, ...]
    dur: np.ndarray
    alpha: np.ndarray
    bw: np.ndarray
    util: np.ndarray
    present: np.ndarray
    a_cold: np.ndarray
    ga: np.ndarray
    s_cold: np.ndarray
    gs: np.ndarray
    idle_a0: np.ndarray
    idle_ga: np.ndarray
    idle_s0: np.ndarray
    idle_gs: np.ndarray

    def freq_index(self, freq_mhz: float) -> int:
        """Column index of a grid frequency."""
        return self.freqs_mhz.index(float(freq_mhz))


def _transfer_cycles_grid(
    vol: np.ndarray,
    denom_bw: np.ndarray,
    core_bpc: float,
    sharpness: float,
    overhead_us: float,
    f_row: np.ndarray,
) -> np.ndarray:
    """Vectorised ``MemoryHierarchy.transfer_cycles`` over specs x freqs.

    ``vol``/``denom_bw`` are per-spec; returns an ``(m, F)`` cycle matrix.
    Zero-volume rows are exactly 0.0, like the scalar early return.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        a = vol / denom_bw
        c = vol / core_bpc
        x = a[:, None] * f_row[None, :]
        c_col = np.broadcast_to(c[:, None], x.shape)
        hi = np.maximum(x, c_col)
        lo = np.minimum(x, c_col)
        ratio = lo / hi
    # NumPy's vectorised float64 pow (SIMD) rounds differently from the
    # libm pow behind Python's float ** that the scalar smooth_max uses —
    # off by 1 ulp on a few permille of inputs.  Bit-identity demands the
    # exact scalar operation, so the two pows run element-wise through
    # Python floats (a few thousand elements on the cold path only).
    inv = 1.0 / sharpness
    p = float(sharpness)
    factor = np.array(
        [(1.0 + r**p) ** inv for r in ratio.ravel().tolist()],
        dtype=np.float64,
    ).reshape(ratio.shape)
    smoothed = hi * factor
    cycles = smoothed + overhead_us * f_row[None, :]
    return np.where((vol > 0.0)[:, None], cycles, 0.0)


def evaluate_unique_grid(
    evaluator: "GroundTruthEvaluator",
    specs: Sequence[OperatorSpec],
    freqs_mhz: Sequence[float],
) -> UniqueSpecGrid:
    """Evaluate every spec at every frequency in one vectorised pass."""
    from repro.npu.execution import _NONCOMPUTE_BANDWIDTH_UTILISATION

    npu = evaluator.npu
    freqs = tuple(npu.frequencies.validate(float(f)) for f in freqs_mhz)
    f_row = np.array(freqs, dtype=np.float64)
    m = len(specs)

    is_compute = np.zeros(m, dtype=bool)
    n_int = np.ones(m, dtype=np.int64)
    core = np.zeros(m, dtype=np.float64)
    ld_bytes = np.zeros(m, dtype=np.float64)
    st_bytes = np.zeros(m, dtype=np.float64)
    derate = np.ones(m, dtype=np.float64)
    overhead_us = np.zeros(m, dtype=np.float64)
    fixed_dur = np.zeros(m, dtype=np.float64)
    nc_bw = np.zeros(m, dtype=np.float64)
    scen = np.zeros(m, dtype=np.int8)
    frac = np.zeros((m, 4), dtype=np.float64)
    for i, spec in enumerate(specs):
        character = spec.compute
        if spec.is_compute and character is not None:
            is_compute[i] = True
            n_int[i] = character.n_blocks
            core[i] = character.core_cycles_per_block
            ld_bytes[i] = character.ld_bytes_per_block
            st_bytes[i] = character.st_bytes_per_block
            derate[i] = character.bandwidth_derate
            overhead_us[i] = character.fixed_overhead_us
            scen[i] = _SCENARIO_CODE[character.scenario]
            mix = character.core_mix_dict
            for s, slot in enumerate(_CORE_SLOTS):
                frac[i, s] = mix.get(SLOT_PIPES[slot], 0.0)
        else:
            fixed_dur[i] = spec.fixed_duration_us
            nc_bw[i] = _NONCOMPUTE_BANDWIDTH_UTILISATION[spec.kind]

    memory = npu.memory
    bw_base = gbps_to_bytes_per_us(memory.uncore_bandwidth_gbps)
    denom_bw = bw_base * derate
    core_bpc = memory.core_bytes_per_cycle
    sharpness = memory.saturation_sharpness
    t0_us = memory.transfer_overhead_us

    ld = _transfer_cycles_grid(ld_bytes, denom_bw, core_bpc, sharpness, t0_us, f_row)
    st = _transfer_cycles_grid(st_bytes, denom_bw, core_bpc, sharpness, t0_us, f_row)

    nf = n_int.astype(np.float64)
    ncol = nf[:, None]
    core_col = core[:, None]
    mx_ldst = np.maximum(ld, st)
    mx_all = np.maximum(mx_ldst, core_col)
    serial = ld + core_col + st
    # Eqs. (5)-(8), scalar operand order preserved.
    eq5 = ld + st + ncol * core_col + (ncol - 1.0) * mx_ldst
    eq6 = ncol * serial
    eq7 = serial + (ncol - 1.0) * mx_all
    chains_a = ((n_int + 1) // 2).astype(np.float64)[:, None]
    chains_b = ncol - chains_a
    eq8 = np.maximum(chains_a * serial, mx_all + chains_b * serial)
    scen_col = scen[:, None]
    pipeline = np.select(
        [scen_col == 0, scen_col == 1, scen_col == 2], [eq5, eq6, eq7], eq8
    )

    # Per-pipe busy union (analytical_busy_stall): the Fig. 8 two-stream
    # schedule clips segments against the odd gaps; everything else is a
    # plain n * length sum.
    a_gaps = 1.0 + (n_int // 2).astype(np.float64)[:, None]
    b_gaps = ((n_int - 1) // 2).astype(np.float64)[:, None]
    odd_gap = serial - mx_all
    ppd_multi = (scen == 3) & (n_int > 1)
    clip = ppd_multi[:, None]

    def union(length: np.ndarray) -> np.ndarray:
        general = ncol * length
        clipped = a_gaps * length + b_gaps * np.minimum(length, odd_gap)
        return np.where(clip, clipped, general)

    busy = np.zeros((m, 6, len(freqs)), dtype=np.float64)
    busy[:, 0, :] = union(ld)
    for s, slot in enumerate(_CORE_SLOTS):
        busy[:, slot, :] = union(core_col * frac[:, s][:, None])
    busy[:, 5, :] = union(st)

    overhead = overhead_us[:, None] * f_row[None, :]
    total = pipeline + overhead
    with np.errstate(divide="ignore", invalid="ignore"):
        dur_compute = total / f_row[None, :]
        util = np.where(total[:, None, :] > 0.0, busy / total[:, None, :], 0.0)

    compute_col = is_compute[:, None]
    dur = np.where(compute_col, dur_compute, fixed_dur[:, None])
    util = np.where(is_compute[:, None, None], util, 0.0)

    present = np.zeros((m, 6), dtype=bool)
    present[:, 0] = ld_bytes > 0.0
    for s, slot in enumerate(_CORE_SLOTS):
        present[:, slot] = frac[:, s] > 0.0
    present[:, 5] = st_bytes > 0.0
    present &= is_compute[:, None]

    # effective_alpha: sequential accumulation over the busy-dict order.
    # Absent slots have an exact 0.0 utilisation, so their ``+ w * 0.0``
    # term is a bitwise no-op on the non-negative partial sum.
    pipe_alpha = npu.power.pipe_alpha_w_per_ghz_v2
    alpha = np.zeros((m, len(freqs)), dtype=np.float64)
    for slot, pipe in enumerate(SLOT_PIPES):
        alpha = alpha + pipe_alpha[pipe] * np.minimum(util[:, slot, :], 1.0)

    moved = ld_bytes * nf + st_bytes * nf
    peak_bw = memory.uncore_bandwidth(derate=1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        bw_compute = np.minimum(1.0, (moved[:, None] / dur) / peak_bw)
    bw = np.where(compute_col, bw_compute, nc_bw[:, None])

    # Power probes, full cold/hot expressions subtracted (engine order).
    power = npu.power
    n_freqs = len(freqs)
    a_cold = np.empty((m, n_freqs), dtype=np.float64)
    ga = np.empty((m, n_freqs), dtype=np.float64)
    s_cold = np.empty((m, n_freqs), dtype=np.float64)
    gs = np.empty((m, n_freqs), dtype=np.float64)
    idle_a0 = np.empty(n_freqs, dtype=np.float64)
    idle_ga = np.empty(n_freqs, dtype=np.float64)
    idle_s0 = np.empty(n_freqs, dtype=np.float64)
    idle_gs = np.empty(n_freqs, dtype=np.float64)
    for j, freq in enumerate(freqs):
        volts = npu.volts_at(freq)
        f_ghz = freq / 1000.0
        active = alpha[:, j] * f_ghz * volts * volts
        idle_ai = power.aicore_idle_power(freq, volts)
        th_cold = power.aicore_thermal_power(0.0, volts)
        th_hot = power.aicore_thermal_power(1.0, volts)
        col_a_cold = active + idle_ai + th_cold
        col_a_hot = active + idle_ai + th_hot
        coupled = power.coupled_power(freq, volts)
        bw_util = np.minimum(bw[:, j], 1.0)
        unc_cold = (
            power.uncore_idle_watts
            + power.uncore_bandwidth_watts * bw_util
            + power.gamma_uncore_w_per_c_v * 0.0 * power.uncore_volts
        )
        unc_hot = (
            power.uncore_idle_watts
            + power.uncore_bandwidth_watts * bw_util
            + power.gamma_uncore_w_per_c_v * 1.0 * power.uncore_volts
        )
        col_s_cold = col_a_cold + coupled + unc_cold
        col_s_hot = col_a_hot + coupled + unc_hot
        a_cold[:, j] = col_a_cold
        ga[:, j] = col_a_hot - col_a_cold
        s_cold[:, j] = col_s_cold
        gs[:, j] = col_s_hot - col_s_cold
        idle_a0[j] = evaluator.idle_aicore_power(freq, 0.0)
        idle_ga[j] = evaluator.idle_aicore_power(freq, 1.0) - idle_a0[j]
        idle_s0[j] = evaluator.idle_soc_power(freq, 0.0)
        idle_gs[j] = evaluator.idle_soc_power(freq, 1.0) - idle_s0[j]

    return UniqueSpecGrid(
        freqs_mhz=freqs,
        dur=dur,
        alpha=alpha,
        bw=bw,
        util=util,
        present=present,
        a_cold=a_cold,
        ga=ga,
        s_cold=s_cold,
        gs=gs,
        idle_a0=idle_a0,
        idle_ga=idle_ga,
        idle_s0=idle_s0,
        idle_gs=idle_gs,
    )
