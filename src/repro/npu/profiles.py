"""Ready-made accelerator profiles.

The default profile is the calibrated Ascend-like NPU the reproduction is
built around (:func:`repro.npu.spec.default_npu_spec`).  This module adds
alternative profiles exercising the Sect. 8.3 generalisation claim — the
whole pipeline runs unmodified against any of them.  All profiles pass
:func:`repro.npu.validation.validate_spec`.
"""

from __future__ import annotations

from repro.npu.frequency import FrequencyGrid
from repro.npu.memory import MemoryHierarchy
from repro.npu.power import PowerSpec
from repro.npu.spec import NpuSpec, SetFreqSpec
from repro.npu.thermal import ThermalSpec
from repro.npu.voltage import VoltageCurve
from repro.units import ms_to_us


def gpu_v100_like_spec() -> NpuSpec:
    """A data-center-GPU-flavoured accelerator.

    Wider frequency range (810-1410 MHz in 75 MHz steps), more/narrower
    cores, slightly lower bandwidth, a bigger idle envelope, and — the
    paper's headline V100 observation — a ~15 ms frequency-control
    latency instead of 1 ms.
    """
    return NpuSpec(
        name="gpu-sim-v100ish",
        frequencies=FrequencyGrid(min_mhz=810.0, max_mhz=1410.0, step_mhz=75.0),
        voltage=VoltageCurve(
            flat_volts=0.75, knee_mhz=1000.0, slope_volts_per_mhz=0.00045
        ),
        memory=MemoryHierarchy(
            core_count=80,
            bytes_per_cycle_per_core=16.0,
            uncore_bandwidth_gbps=900.0,
            transfer_overhead_us=0.08,
        ),
        power=PowerSpec(
            beta_w_per_ghz_v2=6.0,
            theta_w_per_v=14.0,
            coupled_w_per_ghz_v2=10.0,
            uncore_idle_watts=110.0,
            uncore_bandwidth_watts=70.0,
        ),
        thermal=ThermalSpec(celsius_per_watt=0.12),
        setfreq=SetFreqSpec(latency_us=ms_to_us(15.0)),
    )


def edge_npu_spec() -> NpuSpec:
    """A small edge-inference accelerator.

    A narrow, low-voltage frequency range (400-800 MHz), few cores, modest
    LPDDR-class bandwidth, a tiny power envelope, and aggressive thermal
    coupling (passive cooling) — the regime where the thermal term of the
    power model matters most.
    """
    return NpuSpec(
        name="edge-npu-sim",
        frequencies=FrequencyGrid(min_mhz=400.0, max_mhz=800.0, step_mhz=50.0),
        voltage=VoltageCurve(
            flat_volts=0.62, knee_mhz=550.0, slope_volts_per_mhz=0.0006
        ),
        memory=MemoryHierarchy(
            core_count=2,
            bytes_per_cycle_per_core=32.0,
            uncore_bandwidth_gbps=34.0,
            transfer_overhead_us=0.2,
        ),
        power=PowerSpec(
            pipe_alpha_w_per_ghz_v2={
                pipe: weight / 12.0
                for pipe, weight in PowerSpec().pipe_alpha_w_per_ghz_v2.items()
            },
            beta_w_per_ghz_v2=0.4,
            theta_w_per_v=0.8,
            gamma_aicore_w_per_c_v=0.03,
            coupled_w_per_ghz_v2=0.5,
            uncore_idle_watts=2.5,
            uncore_bandwidth_watts=1.8,
            gamma_uncore_w_per_c_v=0.05,
            uncore_volts=0.6,
        ),
        thermal=ThermalSpec(
            ambient_celsius=30.0,
            celsius_per_watt=4.0,
            time_constant_us=8_000_000.0,
        ),
        setfreq=SetFreqSpec(latency_us=ms_to_us(2.0)),
    )


#: All shipped profiles, by name.
PROFILES = {
    "ascend-sim-910": None,  # the default; resolved lazily to avoid cycles
    "gpu-sim-v100ish": gpu_v100_like_spec,
    "edge-npu-sim": edge_npu_spec,
}


def get_profile(name: str) -> NpuSpec:
    """Look up a shipped profile by name.

    Raises:
        KeyError: for unknown profile names.
    """
    if name == "ascend-sim-910":
        from repro.npu.spec import default_npu_spec

        return default_npu_spec()
    factory = PROFILES[name]
    assert factory is not None
    return factory()
