"""Software substitute for the CANN profiler.

On real hardware the paper collects per-operator execution times and
pipeline-utilisation ratios with the CANN profiler.  Here the profiler
observes an :class:`ExecutionResult` from the simulated device and reports
the same information, with realistic measurement noise:

* durations get multiplicative Gaussian noise (profiler timestamp jitter);
* pipe ratios get small additive noise, clipped to [0, 1].

Deliberately mirroring the paper's PMU limitation (Sect. 4.3), the profiler
reports only *aggregate* per-pipe busy ratios — never the distribution of
stalls within an operator — so model construction must fit functions rather
than solve for the piecewise-linear breakpoints directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ProfilingError
from repro.npu.device import ExecutionResult
from repro.npu.pipelines import Pipe
from repro.npu.spec import NpuSpec
from repro.npu.operators import OperatorKind

#: The paper excludes operators shorter than this from model fitting: they
#: are highly variable yet contribute ~0.9% of total execution time.
SHORT_OPERATOR_CUTOFF_US = 20.0


@dataclass(frozen=True)
class ProfiledOperator:
    """One operator instance as seen by the profiler."""

    index: int
    name: str
    op_type: str
    kind: OperatorKind
    start_us: float
    duration_us: float
    gap_before_us: float
    freq_mhz: float
    ratios: Mapping[Pipe, float]
    straddled_switch: bool

    def max_ratio(self) -> tuple[Pipe | None, float]:
        """Busiest pipe and its ratio."""
        if not self.ratios:
            return None, 0.0
        pipe = max(self.ratios, key=lambda p: self.ratios[p])
        return pipe, self.ratios[pipe]

    def ratio_sum(self) -> float:
        """Sum of all pipe ratios."""
        return float(sum(self.ratios.values()))


@dataclass(frozen=True)
class ProfileReport:
    """A full profiling pass over one executed iteration."""

    trace_name: str
    freq_label_mhz: float
    operators: tuple[ProfiledOperator, ...]
    total_duration_us: float

    def __len__(self) -> int:
        return len(self.operators)

    def compute_operators(self) -> list[ProfiledOperator]:
        """Only the operators that run on AICore pipelines."""
        return [op for op in self.operators if op.kind is OperatorKind.COMPUTE]

    def significant_operators(
        self, cutoff_us: float = SHORT_OPERATOR_CUTOFF_US
    ) -> list[ProfiledOperator]:
        """Compute operators at or above the duration cutoff (Sect. 7.2)."""
        return [
            op for op in self.compute_operators() if op.duration_us >= cutoff_us
        ]

    def durations_by_name(self) -> dict[str, float]:
        """Mean measured duration per operator name."""
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for op in self.operators:
            sums[op.name] = sums.get(op.name, 0.0) + op.duration_us
            counts[op.name] = counts.get(op.name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def first_by_name(self) -> dict[str, ProfiledOperator]:
        """First profiled instance per operator name."""
        first: dict[str, ProfiledOperator] = {}
        for op in self.operators:
            first.setdefault(op.name, op)
        return first


class CannStyleProfiler:
    """Generates :class:`ProfileReport` objects from device executions."""

    def __init__(self, npu: NpuSpec, rng: np.random.Generator) -> None:
        self._npu = npu
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The instrument's noise stream (shared with grid profiling)."""
        return self._rng

    def profile(self, result: ExecutionResult) -> ProfileReport:
        """Observe one execution and report noisy per-operator data.

        Raises:
            ProfilingError: if the execution produced no operator records.
        """
        if not result.records:
            raise ProfilingError(
                f"execution of {result.trace_name!r} has no operator records"
            )
        noise = self._npu.noise
        profiled: list[ProfiledOperator] = []
        previous_end = 0.0
        for record in result.records:
            true_duration = record.duration_us
            duration = true_duration * self._duration_factor(noise.duration_sigma)
            ratios = self._noisy_ratios(
                record.evaluation.utilisation, noise.utilisation_sigma
            )
            profiled.append(
                ProfiledOperator(
                    index=record.index,
                    name=record.evaluation.spec.name,
                    op_type=record.evaluation.spec.op_type,
                    kind=record.evaluation.spec.kind,
                    start_us=record.start_us,
                    duration_us=duration,
                    gap_before_us=max(0.0, record.start_us - previous_end),
                    freq_mhz=record.start_freq_mhz,
                    ratios=ratios,
                    straddled_switch=record.straddled_switch,
                )
            )
            previous_end = record.end_us
        return ProfileReport(
            trace_name=result.trace_name,
            freq_label_mhz=result.records[0].start_freq_mhz,
            operators=tuple(profiled),
            total_duration_us=result.duration_us,
        )

    def _duration_factor(self, sigma: float) -> float:
        if sigma <= 0:
            return 1.0
        return float(max(0.5, 1.0 + self._rng.normal(0.0, sigma)))

    def _noisy_ratios(
        self, utilisation: Mapping[Pipe, float], sigma: float
    ) -> dict[Pipe, float]:
        ratios: dict[Pipe, float] = {}
        for pipe, value in utilisation.items():
            noisy = value if sigma <= 0 else value + self._rng.normal(0.0, sigma)
            ratios[pipe] = float(min(1.0, max(0.0, noisy)))
        return ratios


def merge_reports(reports: Iterable[ProfileReport]) -> list[ProfileReport]:
    """Validate that reports cover distinct frequencies and sort by frequency.

    Model fitting expects one report per frequency point for the same trace.

    Raises:
        ProfilingError: on duplicate frequencies or mixed traces.
    """
    ordered = sorted(reports, key=lambda r: r.freq_label_mhz)
    if not ordered:
        raise ProfilingError("no profile reports given")
    names = {report.trace_name for report in ordered}
    if len(names) > 1:
        raise ProfilingError(f"reports mix traces: {sorted(names)}")
    freqs = [report.freq_label_mhz for report in ordered]
    if len(set(freqs)) != len(freqs):
        raise ProfilingError(f"duplicate frequency reports: {freqs}")
    return ordered
