"""Operator execution timelines (paper Sect. 4.2, Figs. 5-8).

The paper classifies operator execution into four scenarios along two axes:
whether the operator uses *PingPong* (double buffering, overlapping data
movement with computation) and whether its load and store streams are
*dependent* (cannot be processed simultaneously).  Each scenario yields a
closed-form cycle count — Eqs. (5)-(8) — that is a convex piecewise-linear
function of core frequency.

This module provides both:

* :func:`closed_form_cycles` — the paper's equations, evaluated directly;
* :func:`build_timeline` — an explicit schedule of pipe segments matching
  the corresponding figure, from which the PMU derives per-pipe busy cycles
  and stall breakdowns.

The two agree exactly on total cycles by construction; a property test
asserts this for randomly drawn operators.

A note on Eq. (8): the published text garbles its leading coefficient.  The
trailing ``n * T0 * f`` term (half of the serial case's ``2n * T0 * f``)
identifies it as ``n/2`` — double buffering overlaps the two buffers'
dependent Ld->core->St chains, offset by ``max(Ld, core, St)``.  We build
that two-stream schedule explicitly, which for odd ``n`` generalises to
``max(ceil(n/2) * (Ld+core+St), max(Ld,core,St) + floor(n/2) * (Ld+core+St))``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.npu.pipelines import CORE_PIPES, Pipe, validate_core_mix

#: Stable order in which a core block's sub-segments are laid out.
_CORE_PIPE_ORDER: tuple[Pipe, ...] = (Pipe.CUBE, Pipe.VECTOR, Pipe.SCALAR, Pipe.MTE1)


class Scenario(enum.Enum):
    """The four execution scenarios of Sect. 4.2."""

    PINGPONG_FREE_INDEPENDENT = "pingpong_free_independent"
    PINGPONG_FREE_DEPENDENT = "pingpong_free_dependent"
    PINGPONG_INDEPENDENT = "pingpong_independent"
    PINGPONG_DEPENDENT = "pingpong_dependent"

    @property
    def pingpong(self) -> bool:
        """Whether double buffering overlaps transfers with compute."""
        return self in (Scenario.PINGPONG_INDEPENDENT, Scenario.PINGPONG_DEPENDENT)

    @property
    def dependent(self) -> bool:
        """Whether Ld and St cannot be processed simultaneously."""
        return self in (
            Scenario.PINGPONG_FREE_DEPENDENT,
            Scenario.PINGPONG_DEPENDENT,
        )

    @classmethod
    def from_flags(cls, pingpong: bool, dependent: bool) -> "Scenario":
        """Select the scenario from its two defining properties."""
        if pingpong:
            return cls.PINGPONG_DEPENDENT if dependent else cls.PINGPONG_INDEPENDENT
        return cls.PINGPONG_FREE_DEPENDENT if dependent else cls.PINGPONG_FREE_INDEPENDENT


@dataclass(frozen=True)
class BlockCosts:
    """Per-block cycle costs at a specific core frequency.

    ``ld_cycles``/``st_cycles`` are full ``Cycle(Ld)``/``Cycle(St)`` values
    from Eq. (4), *including* the ``T0 * f`` overhead; ``core_cycles`` is the
    frequency-independent core computation cost.
    """

    ld_cycles: float
    st_cycles: float
    core_cycles: float

    def __post_init__(self) -> None:
        for name in ("ld_cycles", "st_cycles", "core_cycles"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def serial_cycles(self) -> float:
        """Cost of one fully serialised Ld -> core -> St chain."""
        return self.ld_cycles + self.core_cycles + self.st_cycles

    @property
    def max_component(self) -> float:
        """The dominant component ``max(Cycle(Ld), Cycle(core), Cycle(St))``."""
        return max(self.ld_cycles, self.core_cycles, self.st_cycles)


@dataclass(frozen=True)
class Segment:
    """A half-open busy interval ``[start, end)`` on one pipe, in cycles."""

    pipe: Pipe
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"segment end {self.end} before start {self.start}"
            )

    @property
    def length(self) -> float:
        """Cycle length of the segment."""
        return self.end - self.start


def closed_form_cycles(scenario: Scenario, n_blocks: int, costs: BlockCosts) -> float:
    """Total operator cycles per the paper's Eqs. (5)-(8).

    Args:
        scenario: which of the four execution scenarios applies.
        n_blocks: the operator's number of core computations ``n`` (>= 1).
        costs: per-block cycle costs at the frequency of interest.
    """
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    n = n_blocks
    ld, st, core = costs.ld_cycles, costs.st_cycles, costs.core_cycles
    if scenario is Scenario.PINGPONG_FREE_INDEPENDENT:
        # Eq. (5): serial compute; adjacent move-in/move-out overlap pairwise.
        return ld + st + n * core + (n - 1) * max(ld, st)
    if scenario is Scenario.PINGPONG_FREE_DEPENDENT:
        # Eq. (6): everything serialises.
        return n * (ld + core + st)
    if scenario is Scenario.PINGPONG_INDEPENDENT:
        # Eq. (7): steady state is paced by the dominant component.
        return ld + core + st + (n - 1) * costs.max_component
    # Eq. (8), PINGPONG_DEPENDENT: two buffer streams of serial chains,
    # offset by the dominant component (see module docstring).
    chains_a = math.ceil(n / 2)
    chains_b = n - chains_a
    end_a = chains_a * costs.serial_cycles
    end_b = costs.max_component + chains_b * costs.serial_cycles
    return max(end_a, end_b)


def _core_block_segments(
    start: float, core_cycles: float, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """Split one core block into sequential per-pipe sub-segments."""
    segments: list[Segment] = []
    cursor = start
    for pipe in _CORE_PIPE_ORDER:
        fraction = core_mix.get(pipe, 0.0)
        if fraction <= 0:
            continue
        length = core_cycles * fraction
        segments.append(Segment(pipe=pipe, start=cursor, end=cursor + length))
        cursor += length
    return segments


def _chain_segments(
    start: float, costs: BlockCosts, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """One serial Ld -> core -> St chain beginning at ``start``."""
    segments: list[Segment] = []
    cursor = start
    if costs.ld_cycles > 0:
        segments.append(Segment(Pipe.MTE2, cursor, cursor + costs.ld_cycles))
    cursor += costs.ld_cycles
    segments.extend(_core_block_segments(cursor, costs.core_cycles, core_mix))
    cursor += costs.core_cycles
    if costs.st_cycles > 0:
        segments.append(Segment(Pipe.MTE3, cursor, cursor + costs.st_cycles))
    return segments


@dataclass(frozen=True)
class Timeline:
    """A concrete operator schedule: pipe segments plus the total cycles."""

    scenario: Scenario
    n_blocks: int
    total_cycles: float
    segments: tuple[Segment, ...]

    def busy_cycles(self) -> dict[Pipe, float]:
        """Union-length of busy intervals per pipe.

        Overlapping segments on the same pipe (e.g. the two in-flight loads
        of the pingpong-dependent schedule) are counted once, so a pipe's
        busy cycles never exceed the total.
        """
        by_pipe: dict[Pipe, list[Segment]] = {}
        for segment in self.segments:
            by_pipe.setdefault(segment.pipe, []).append(segment)
        return {
            pipe: _union_length(segs) for pipe, segs in by_pipe.items()
        }

    def stall_cycles(self) -> float:
        """Cycles during which no core-domain pipe is computing.

        This is the 'stall' of the paper's timeline figures: total cycles
        minus the union of all core-pipe busy intervals.
        """
        core_segments = [s for s in self.segments if s.pipe in CORE_PIPES]
        return self.total_cycles - _union_length(core_segments)


def _union_length(segments: Iterable[Segment]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    spans = sorted(
        ((s.start, s.end) for s in segments if s.end > s.start),
    )
    covered = 0.0
    current_start: float | None = None
    current_end = 0.0
    for start, end in spans:
        if current_start is None or start > current_end:
            if current_start is not None:
                covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        covered += current_end - current_start
    return covered


def analytical_busy_stall(
    scenario: Scenario,
    n_blocks: int,
    costs: BlockCosts,
    core_mix: Mapping[Pipe, float],
) -> tuple[dict[Pipe, float], float]:
    """Per-pipe busy cycles and stall cycles, without building segments.

    In the schedules of Figs. 5-7 the segments of any single pipe are
    pairwise disjoint: each scenario's pacing interval (``core + max(ld,
    st)``, ``ld + core + st``, or ``max(ld, core, st)``) is at least as
    long as every individual component, so consecutive occurrences of the
    same pipe never overlap — at most they touch.  A pipe's union-length
    there equals the plain sum of its segment lengths (``n * ld`` for
    MTE2, ``n * st`` for MTE3, ``n * core * fraction`` per core pipe),
    and the core-domain union is ``n * core``.

    The Fig. 8 two-stream schedule does overlap across streams: sorted
    chain starts alternate with gaps ``offset`` (= the dominant
    component) and ``serial - offset``.  Every per-pipe segment length is
    at most ``offset``, so only the odd gaps clip, and the union of ``n``
    length-``L`` segments reduces to ``L + a*L + b*min(L, serial -
    offset)`` with ``a = ceil((n-1)/2)`` even gaps and ``b =
    floor((n-1)/2)`` odd ones.

    This is what the hot evaluation path uses; :func:`build_timeline`
    remains the explicit schedule the PMU view derives from, and a
    property test pins the two against each other.

    Returns:
        ``(busy cycles per pipe, stall cycles)`` — the same values as
        ``build_timeline(...).busy_cycles()`` / ``.stall_cycles()``.
    """
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    validate_core_mix(dict(core_mix))
    n = n_blocks
    total = closed_form_cycles(scenario, n, costs)
    core = costs.core_cycles
    if scenario is Scenario.PINGPONG_DEPENDENT and n > 1:
        a = (n - 1 + 1) // 2  # even-position gaps, length == offset
        b = (n - 1) // 2  # odd-position gaps, length == serial - offset
        odd_gap = costs.serial_cycles - costs.max_component

        def union(length: float) -> float:
            # Segment length never exceeds the offset (the dominant
            # component), so only the odd gaps can clip.
            return (1 + a) * length + b * min(length, odd_gap)
    else:

        def union(length: float) -> float:
            return n * length

    busy: dict[Pipe, float] = {}
    if costs.ld_cycles > 0:
        busy[Pipe.MTE2] = union(costs.ld_cycles)
    for pipe in _CORE_PIPE_ORDER:
        fraction = core_mix.get(pipe, 0.0)
        if fraction > 0:
            busy[pipe] = union(core * fraction)
    if costs.st_cycles > 0:
        busy[Pipe.MTE3] = union(costs.st_cycles)
    core_union = union(core) if core > 0 else 0.0
    return busy, total - core_union


def build_timeline(
    scenario: Scenario,
    n_blocks: int,
    costs: BlockCosts,
    core_mix: Mapping[Pipe, float],
) -> Timeline:
    """Construct the explicit schedule of Figs. 5-8 for one operator.

    The returned timeline's ``total_cycles`` equals
    :func:`closed_form_cycles` for the same inputs by construction.
    """
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    validate_core_mix(dict(core_mix))
    builder = {
        Scenario.PINGPONG_FREE_INDEPENDENT: _build_ppfree_independent,
        Scenario.PINGPONG_FREE_DEPENDENT: _build_ppfree_dependent,
        Scenario.PINGPONG_INDEPENDENT: _build_pingpong_independent,
        Scenario.PINGPONG_DEPENDENT: _build_pingpong_dependent,
    }[scenario]
    segments = builder(n_blocks, costs, core_mix)
    total = closed_form_cycles(scenario, n_blocks, costs)
    return Timeline(
        scenario=scenario,
        n_blocks=n_blocks,
        total_cycles=total,
        segments=tuple(segments),
    )


def _build_ppfree_independent(
    n: int, costs: BlockCosts, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """Fig. 5: head Ld, serial cores, paired mid Ld/St, tail St."""
    ld, st, core = costs.ld_cycles, costs.st_cycles, costs.core_cycles
    gap = max(ld, st)
    segments: list[Segment] = []
    if ld > 0:
        segments.append(Segment(Pipe.MTE2, 0.0, ld))
    for i in range(n):
        core_start = ld + i * (core + gap)
        segments.extend(_core_block_segments(core_start, core, core_mix))
        core_end = core_start + core
        if i < n - 1:
            # Move-out of block i and move-in of block i+1 run in parallel.
            if st > 0:
                segments.append(Segment(Pipe.MTE3, core_end, core_end + st))
            if ld > 0:
                segments.append(Segment(Pipe.MTE2, core_end, core_end + ld))
        elif st > 0:
            segments.append(Segment(Pipe.MTE3, core_end, core_end + st))
    return segments


def _build_ppfree_dependent(
    n: int, costs: BlockCosts, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """Fig. 6: fully serial Ld -> core -> St chains."""
    segments: list[Segment] = []
    for i in range(n):
        segments.extend(
            _chain_segments(i * costs.serial_cycles, costs, core_mix)
        )
    return segments


def _build_pingpong_independent(
    n: int, costs: BlockCosts, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """Fig. 7: steady state paced by the dominant component."""
    ld, st, core = costs.ld_cycles, costs.st_cycles, costs.core_cycles
    period = costs.max_component
    segments: list[Segment] = []
    for i in range(n):
        core_start = ld + i * period
        # Move-in finishes exactly when the core block starts.
        if ld > 0:
            segments.append(Segment(Pipe.MTE2, core_start - ld, core_start))
        segments.extend(_core_block_segments(core_start, core, core_mix))
        if st > 0:
            core_end = core_start + core
            segments.append(Segment(Pipe.MTE3, core_end, core_end + st))
    return segments


def _build_pingpong_dependent(
    n: int, costs: BlockCosts, core_mix: Mapping[Pipe, float]
) -> list[Segment]:
    """Fig. 8: two buffer streams of serial chains, offset by the max."""
    offset = costs.max_component
    period = costs.serial_cycles
    segments: list[Segment] = []
    for i in range(n):
        stream, position = i % 2, i // 2
        start = stream * offset + position * period
        segments.extend(_chain_segments(start, costs, core_mix))
    return segments
