#!/usr/bin/env python3
"""Host-bound inference under uniform DVFS (the paper's Sect. 8.4).

Llama2 decode steps are dispatched by the host slower than the NPU can
execute them, so the accelerator idles between operators.  Sweeping a
uniform frequency cap shows the paper's observation: frequency cuts mostly
fill idle time, trading a few percent of latency for large AICore power
reductions.

Usage::

    python examples/inference_serving.py [scale]
"""

from __future__ import annotations

import sys

from repro.core.report import format_table
from repro.dvfs import DvfsExecutor, constant_strategy
from repro.npu import NpuDevice, default_npu_spec
from repro.npu.device import IDLE_INDEX
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    device = NpuDevice(default_npu_spec())
    executor = DvfsExecutor(device)
    trace = generate("llama2_inference", scale=scale)

    baseline = device.run_stable(trace)
    idle_us = sum(
        c.duration_us for c in baseline.chunks if c.op_index == IDLE_INDEX
    )
    print(
        f"Llama2 decode trace: {trace.operator_count} operators, "
        f"{idle_us / baseline.duration_us:.0%} NPU idle at 1800 MHz "
        "(host-bound)\n"
    )

    rows = []
    for freq in (1800.0, 1600.0, 1400.0, 1300.0, 1100.0, 1000.0):
        strategy = constant_strategy(trace.name, freq, baseline.duration_us)
        outcome = executor.execute_with_baseline(trace, strategy)
        rows.append(
            {
                "freq_mhz": int(freq),
                "latency_loss": f"{outcome.performance_loss:.2%}",
                "aicore_reduction": f"{outcome.aicore_power_reduction:.2%}",
                "soc_reduction": f"{outcome.soc_power_reduction:.2%}",
                "aicore_w": round(outcome.result.aicore_avg_watts, 1),
            }
        )

    print(format_table(rows))
    print()
    print("Paper (Sect. 8.4): on real hardware, 1300 MHz cost 2.48% "
          "performance for a 25.06% AICore / 11.26% SoC power reduction — "
          "the idle time absorbs most of the frequency cut until the "
          "operators outgrow the host's dispatch interval.")


if __name__ == "__main__":
    main()
