#!/usr/bin/env python3
"""Study the performance/power model accuracy (Sect. 7.2 / 7.3).

Profiles a workload across the frequency grid, fits the paper's three
performance surrogates and the temperature-aware power model, and reports
held-out prediction accuracy — including the gamma = 0 ablation showing
what the temperature term buys.

Usage::

    python examples/model_accuracy_study.py [workload] [scale]
"""

from __future__ import annotations

import sys

from repro.analysis.rng import RngFactory
from repro.core.report import format_table
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    PowerTelemetry,
    default_npu_spec,
)
from repro.perf import (
    FitFunction,
    build_performance_model,
    validate_performance_model,
)
from repro.power import run_offline_calibration, validate_power_model
from repro.workloads import generate
from repro.workloads.generators import micro


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vit_base"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    spec = default_npu_spec()
    device = NpuDevice(spec)
    rng = RngFactory(0)
    profiler = CannStyleProfiler(spec, rng.generator("profiler"))
    telemetry = PowerTelemetry(spec, rng.generator("telemetry"))
    trace = generate(workload, scale=scale)

    print(f"Profiling {workload} (scale={scale}) at six frequencies...")
    freqs = (1000.0, 1200.0, 1300.0, 1500.0, 1600.0, 1800.0)
    reports = [
        profiler.profile(
            device.run(trace, FrequencyTimeline.constant(f),
                       initial_celsius=60.0)
        )
        for f in freqs
    ]
    print(f"  {len(reports[0].significant_operators())} operators above "
          "the 20 us cutoff\n")

    print("Performance model (fit at the extremes, validate in between):")
    rows = []
    for function in (FitFunction.QUADRATIC_NO_LINEAR, FitFunction.QUADRATIC):
        model = build_performance_model(reports, function=function)
        validation = validate_performance_model(model, reports)
        summary = validation.summary
        rows.append(
            {
                "function": function.value,
                "points": validation.data_points,
                "mean_err": f"{summary.mean:.2%}",
                "within_5pct": f"{summary.within_5pct:.1%}",
                "within_10pct": f"{summary.within_10pct:.1%}",
            }
        )
    print(format_table(rows))
    print("  (paper: Func. 2 averages 1.96%, >90% within 5%)\n")

    print("Power model (offline calibration, fit at 1000/1800 MHz):")
    constants = run_offline_calibration(
        device, telemetry, micro.mixed_calibration_load(repeats=15),
        k_loads=[micro.matmul_loop(repeats=30), micro.gelu_loop(repeats=30)],
    )
    print(f"  extracted gamma_AICore = {constants.gamma_aicore_w_per_c_v:.3f}"
          f" W/(C*V), k = {constants.k_celsius_per_watt:.3f} C/W")
    kwargs = dict(validation_freqs_mhz=[1200.0, 1400.0, 1600.0])
    with_thermal = validate_power_model(
        [trace], device, telemetry, constants, **kwargs
    )
    without = validate_power_model(
        [trace], device, telemetry, constants.without_thermal_term(), **kwargs
    )
    print(f"  mean error with temperature term:    "
          f"{with_thermal.mean_error:.2%}")
    print(f"  mean error without (gamma = 0):      {without.mean_error:.2%}")
    print("  (paper: 4.62% with, 4.97% without; single-workload results "
          "vary with sensor noise — the table2 experiment aggregates "
          "seven loads)")


if __name__ == "__main__":
    main()
