#!/usr/bin/env python3
"""GPT-3 training: sweep performance-loss targets (the paper's Table 3).

Reproduces the paper's headline workload: a GPT-3 training iteration
optimised under loss targets from 2% to 10%, showing how power savings grow
with the allowed slowdown and where the returns diminish (2% is the
production sweet spot).

Usage::

    python examples/gpt3_training_sweep.py [scale]

``scale=1.0`` builds the full ~14k-operator, ~11 s iteration (slow);
the default 0.1 preserves the structure at a tenth of the layers.
"""

from __future__ import annotations

import sys

from repro import OptimizerConfig
from repro.core import sweep_loss_targets
from repro.core.report import format_table
from repro.dvfs import GaConfig
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    trace = generate("gpt3", scale=scale)
    print(
        f"GPT-3 iteration: {trace.operator_count} operators "
        f"(scale={scale})\n"
    )

    config = OptimizerConfig(
        ga=GaConfig(population_size=200, iterations=600)
    )
    sweep = sweep_loss_targets(
        trace, (0.02, 0.04, 0.06, 0.08, 0.10), config=config
    )
    rows = []
    for report in sweep.reports:
        row = report.table3_row()
        row["setfreq"] = report.setfreq_count
        lfc = report.strategy.mean_lfc_freq_mhz()
        row["mean_lfc_mhz"] = f"{lfc:.0f}" if lfc else "-"
        rows.append(row)
        print(f"  target {report.performance_loss_target:.0%}: "
              f"loss {report.performance_loss:.2%}, "
              f"AICore -{report.aicore_power_reduction:.2%}, "
              f"SoC -{report.soc_power_reduction:.2%}")

    print()
    print(format_table(rows))
    print()
    print(f"savings monotone in target: {sweep.savings_are_monotone()}; "
          f"best savings-per-loss at the {sweep.knee_target():.0%} target")
    print()
    print("Expected shapes (paper Table 3): measured loss stays below each "
          "target; AICore/SoC savings grow monotonically with diminishing "
          "returns; the LFC mean frequency falls as the budget loosens.")


if __name__ == "__main__":
    main()
