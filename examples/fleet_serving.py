#!/usr/bin/env python3
"""Fleet-scale strategy serving (the paper's Sect. 8.1 amortization).

The paper's answer to "why pay for models + a GA search?" is that the
cost is paid once per workload and then amortised: production fleets run
the same handful of models over and over.  This example stands up a
``StrategyService`` over a persistent on-disk store and pushes a mixed
request stream through it twice — a cold pass that pays for each
distinct workload exactly once, and a simulated restart that serves
everything from the persisted store without a single GA run.

Usage::

    python examples/fleet_serving.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import OptimizerConfig
from repro.core import render_service_stats
from repro.dvfs import GaConfig
from repro.serve import StrategyService, StrategyStore
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    config = OptimizerConfig(
        performance_loss_target=0.02,
        ga=GaConfig(population_size=40, iterations=60, seed=0),
    )

    # A fleet serves few distinct workloads, many times each.
    traces = [generate(name, scale=scale)
              for name in ("gpt3", "bert", "resnet50")]
    stream = [traces[i % len(traces)] for i in range(12)]
    print(f"Request stream: {len(stream)} requests over "
          f"{len(traces)} distinct workloads\n")

    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp) / "strategy-store"

        # Cold session: each distinct workload costs one GA run; every
        # repeat is a cache hit or coalesces onto an in-flight request.
        store = StrategyStore(root=store_root)
        with StrategyService(config=config, store=store, workers=2) as service:
            start = time.perf_counter()
            for result in service.serve_batch(stream):
                print(f"  {result.strategy.workload:<10} "
                      f"{result.source:<9} "
                      f"{result.latency_seconds * 1e3:9.3f} ms  "
                      f"{result.fingerprint[:12]}")
            cold = time.perf_counter() - start
            print(f"\ncold session: {cold:.2f} s, "
                  f"{service.stats.ga_runs} GA runs\n")

        # Restart: a fresh service over the same directory — the paid-for
        # strategies survive on disk, so repeats cost microseconds.
        store = StrategyStore(root=store_root)
        with StrategyService(config=config, store=store) as service:
            start = time.perf_counter()
            for trace in stream:
                service.request(trace)
            warm = time.perf_counter() - start
            print(f"warm restart: {warm * 1e3:.1f} ms total, "
                  f"{service.stats.ga_runs} GA runs")
            print(render_service_stats(service.stats))

    print("\nSect. 8.1's amortization argument in action: the modelling "
          "and search cost was paid once per distinct workload; every "
          "repeated request — including across a process restart — was "
          "served from the content-addressed store.")


if __name__ == "__main__":
    main()
