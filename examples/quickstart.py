#!/usr/bin/env python3
"""Quickstart: optimise one workload's energy with operator-level DVFS.

Runs the complete Fig. 1 pipeline on a (scaled-down) BERT training
iteration: profile at the reference frequencies, fit performance and power
models, classify/preprocess operators into LFC/HFC stages, search stage
frequencies with the genetic algorithm, execute the strategy via SetFreq,
and compare against the max-frequency baseline.

Usage::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import EnergyOptimizer, OptimizerConfig
from repro.core.report import format_table
from repro.dvfs import GaConfig
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    print(f"Generating a BERT training iteration (scale={scale})...")
    trace = generate("bert", scale=scale)
    print(f"  {trace.operator_count} operators, "
          f"{len(trace.unique_specs())} unique specs")

    config = OptimizerConfig(
        performance_loss_target=0.02,  # the paper's production target
        ga=GaConfig(population_size=120, iterations=300),
    )
    optimizer = EnergyOptimizer(config)

    print("Running the end-to-end pipeline "
          "(profile -> model -> search -> execute)...")
    report = optimizer.optimize(trace)

    print()
    print(report.summary())
    print()
    print("Table-3-style row:")
    print(format_table([report.table3_row()]))
    print()
    histogram = report.strategy.frequency_histogram()
    print("Strategy frequency residency (ms):")
    for freq in sorted(histogram):
        print(f"  {freq:6.0f} MHz : {histogram[freq] / 1000.0:9.2f}")
    print()
    print(f"GA searched {report.search.evaluations} strategies in "
          f"{report.search.wall_seconds:.2f}s "
          f"({report.search.evaluations / report.search.wall_seconds:,.0f} "
          "strategies/s — the paper's case for model-based scoring).")


if __name__ == "__main__":
    main()
