#!/usr/bin/env python3
"""Multi-device demo: reclaim barrier slack on a data-parallel fleet.

Simulates one synchronous training step of a (scaled-down) GPT-3
iteration on eight NPUs with seeded silicon/thermal variation, then
applies slack reclamation: the slowest device sets the all-reduce
barrier, and every other device is downclocked to arrive just-in-time —
trading useless barrier waiting for cheaper compute at zero step-time
cost.  Finally one device is degraded to show the stale plan tripping a
barrier-overrun incident and the re-targeted reclamation.

Usage::

    python examples/cluster_training.py [scale]
"""

from __future__ import annotations

import sys

from repro.cluster import (
    ClusterSpec,
    SimulatedCluster,
    build_frequency_tables,
    reclaim_slack,
)
from repro.core.report import format_table
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Generating a GPT-3 training iteration (scale={scale})...")
    trace = generate("gpt3", scale=scale)

    spec = ClusterSpec(n_devices=8, seed=0)
    cluster = SimulatedCluster(spec)
    print(f"Fleet of {spec.n_devices} devices, ring all-reduce "
          f"{spec.allreduce_us / 1000.0:.2f} ms per step.")
    for profile in cluster.profiles:
        print(f"  device {profile.device_id}: "
              f"speed x{profile.total_duration_scale:.4f}, "
              f"ambient {profile.ambient_offset_celsius:+.1f} C")

    print("\nBaseline step (every device at maximum frequency)...")
    baseline = cluster.run_step(trace)
    print(f"  step {baseline.step_us / 1000.0:.2f} ms, straggler device "
          f"{baseline.straggler_id}, fleet SoC "
          f"{baseline.fleet_soc_energy_j:.1f} J")

    print("\nReclaiming barrier slack "
          "(downclock non-critical devices to just-in-time arrival)...")
    tables = build_frequency_tables(cluster, trace)
    plan = reclaim_slack(tables, trace.name, allreduce_us=spec.allreduce_us)
    reclaimed = cluster.run_step(
        trace, plan.strategies, target_compute_us=plan.target_compute_us
    )
    report = reclaimed.report(baseline)
    print()
    print(report.summary())
    print()
    print(format_table(reclaimed.device_rows()))

    print("\nDegrading one device 1.3x and replaying the stale plan...")
    victim = (baseline.straggler_id + 1) % spec.n_devices
    degraded = SimulatedCluster(
        spec.with_degraded_device(victim, 1.3, reason="demo degradation")
    )
    stale = degraded.run_step(
        trace, plan.strategies, target_compute_us=plan.target_compute_us
    )
    for incident in stale.incidents:
        print(f"  incident: {incident.kind} — {incident.detail}")
    new_plan = reclaim_slack(
        build_frequency_tables(degraded, trace),
        trace.name,
        allreduce_us=spec.allreduce_us,
    )
    print(f"  re-targeted reclamation: straggler is now device "
          f"{new_plan.straggler_id}; healthy devices drop to "
          f"{sorted(set(new_plan.frequencies_mhz))} MHz.")


if __name__ == "__main__":
    main()
