#!/usr/bin/env python3
"""Generalising to other hardware (the paper's Sect. 8.3).

The performance model rests only on the core/uncore memory-hierarchy
abstraction, and the power model only on CMOS physics — so the pipeline
should transfer to any accelerator with that shape.  This example builds a
GPU-flavoured accelerator (different frequency range, voltage curve,
bandwidth, power envelope, and a slower 15 ms frequency-control path like
a V100) and runs the identical optimization pipeline on it.

Usage::

    python examples/custom_accelerator.py [scale]
"""

from __future__ import annotations

import sys

from repro import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.npu import gpu_v100_like_spec, validate_spec
from repro.workloads import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    spec = gpu_v100_like_spec()
    report = validate_spec(spec)
    print(f"Custom accelerator: {spec.name} "
          f"(validator: {'ok' if report.ok else 'ERRORS'}, "
          f"{len(report.warnings)} warnings)")
    print(f"  frequencies: {spec.frequencies.points[0]:.0f}-"
          f"{spec.frequencies.points[-1]:.0f} MHz "
          f"({spec.frequencies.count} points)")
    print(f"  uncore bandwidth: {spec.memory.uncore_bandwidth_gbps:.0f} GB/s, "
          f"Ld/St saturation at {spec.memory.saturation_frequency():.0f} MHz")
    print(f"  frequency-control latency: "
          f"{spec.setfreq.total_latency_us / 1000:.0f} ms\n")

    config = OptimizerConfig(
        npu=spec,
        performance_loss_target=0.02,
        # The paper's per-operator data-collection protocol, on this
        # device's own grid.
        profile_freqs_mhz=(810.0, 1110.0, 1410.0),
        ga=GaConfig(
            population_size=150,
            iterations=400,
            prior_lfc_mhz=1185.0,
            prior_hfc_mhz=1410.0,
        ),
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=scale)
    print(f"Optimising {trace.name} ({trace.operator_count} operators) on "
          "the custom device...")
    report = optimizer.optimize(trace)

    print()
    print(report.summary())
    print()
    print("Sect. 8.3's claim in action: nothing in the pipeline referenced "
          "Ascend specifics — the same models, classification, and search "
          "ran unmodified against a different frequency grid, voltage "
          "curve, memory system, and power envelope.")


if __name__ == "__main__":
    main()
