"""Benchmark: regenerate Fig. 10 (temperature vs SoC power lines)."""

import pytest

from repro.experiments import run_experiment


def test_bench_fig10(run_once):
    result = run_once(run_experiment, "fig10", scale=0.4)
    # Every load traces a straight line (the paper's Fig. 10 shape)...
    assert result.measured["all_linear"]
    # ...with a common slope close to the thermal ground truth.
    assert result.measured["mean_k"] == pytest.approx(
        result.measured["ground_truth_k"], rel=0.15
    )
    assert result.measured["k_spread"] < 0.05
