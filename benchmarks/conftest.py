"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact end-to-end via the
experiment harness at a reduced (but structure-preserving) scale, asserts
the paper's qualitative shape on the result, and reports wall time through
pytest-benchmark.  Experiments are expensive, so each runs exactly once
(``benchmark.pedantic(rounds=1)``).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
