#!/usr/bin/env python
"""Repo-wide performance microbenchmarks for the simulation engine.

Measures the four hot paths the compiled-trace engine accelerates, each
A/B against the reference per-chunk loop (forced via
:func:`repro.npu.engine.reference_only`):

* ``simulate``  — single-iteration trace execution (operators/second);
* ``sweep``     — a full-grid constant-frequency ``run_stable`` profiler
  sweep (wall seconds);
* ``cluster``   — a synchronous multi-device training step (steps/second);
* ``ga``        — genetic-algorithm strategy search (seconds/generation;
  array-scoring based, engine-independent, tracked for the trajectory).

Methodology: every arm runs ``--warmup`` untimed rounds first (populating
the evaluator memo, compiled-trace cache, and the constant-frequency
affine reductions — the warm regime is the representative one, since
sweeps, ``repro.serve`` warm-up, GA baselines and cluster steps all rerun
the same trace), then ``--rounds`` timed rounds; the minimum is the
headline number.  The first fast-path round of each section is also
reported separately as ``cold_seconds`` (compile + column build cost).

Numerical equivalence between the two arms is asserted at 1e-9 relative
tolerance on duration/energy/temperature aggregates for every section
that exercises the engine; any violation fails the run (exit 1), which is
what the CI perf-smoke job gates on.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py \
        --scale 0.02 --rounds 3 --output BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import batching  # noqa: E402
from repro.cluster import ClusterSpec, SimulatedCluster  # noqa: E402
from repro.core import EnergyOptimizer, OptimizerConfig  # noqa: E402
from repro.dvfs.ga import GaConfig, run_search  # noqa: E402
from repro.npu import (  # noqa: E402
    FrequencyTimeline,
    NpuDevice,
    default_npu_spec,
    reference_only,
)
from repro.workloads import generate  # noqa: E402

EQUIV_REL_TOL = 1e-9

#: Best cold-path time in the previously checked-in BENCH_pipeline.json
#: (gpt3 scale 0.1, GA 64x16, batched cold path before the lazy-object,
#: shared-compile and surrogate work).  The surrogate section reports its
#: end-to-end speedup against this fixed reference point.
PRIOR_PIPELINE_BEST_SECONDS = 0.04616534999877331


class EquivalenceFailure(AssertionError):
    """Fast path diverged from the reference loop beyond the budget."""


def _rel_err(a: float, b: float) -> float:
    scale = max(abs(a), abs(b), 1e-30)
    return abs(a - b) / scale


def check_result_equivalence(fast, ref, context: str) -> float:
    """Max relative error across result aggregates; raises past budget."""
    worst = 0.0
    for field in (
        "duration_us", "aicore_energy_j", "soc_energy_j", "end_celsius",
    ):
        err = _rel_err(getattr(fast, field), getattr(ref, field))
        worst = max(worst, err)
        if err > EQUIV_REL_TOL:
            raise EquivalenceFailure(
                f"{context}: {field} diverged by {err:.3e} "
                f"(fast={getattr(fast, field)!r}, ref={getattr(ref, field)!r})"
            )
    return worst


def time_rounds(fn, warmup: int, rounds: int) -> dict:
    """Warm up, then time ``rounds`` calls of ``fn``."""
    cold_start = time.perf_counter()
    fn()
    cold = time.perf_counter() - cold_start
    for _ in range(max(0, warmup - 1)):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "cold_seconds": cold,
        "best_seconds": min(samples),
        "mean_seconds": sum(samples) / len(samples),
        "rounds": rounds,
        "warmup": warmup,
    }


def bench_simulate(trace, warmup: int, rounds: int) -> dict:
    """Single-iteration execution, fast path vs reference loop."""
    spec = default_npu_spec()
    timeline = FrequencyTimeline.constant(spec.max_frequency_mhz)
    fast_dev = NpuDevice(spec)
    ref_dev = NpuDevice(spec, engine=False)

    fast = time_rounds(lambda: fast_dev.run(trace, timeline), warmup, rounds)
    ref = time_rounds(lambda: ref_dev.run(trace, timeline), warmup, rounds)
    worst = check_result_equivalence(
        fast_dev.run(trace, timeline), ref_dev.run(trace, timeline),
        "simulate",
    )
    n_ops = len(trace.entries)
    return {
        "trace": trace.name,
        "operators": n_ops,
        "fast": fast,
        "reference": ref,
        "fast_ops_per_second": n_ops / fast["best_seconds"],
        "reference_ops_per_second": n_ops / ref["best_seconds"],
        "speedup": ref["best_seconds"] / fast["best_seconds"],
        "max_rel_error": worst,
    }


def bench_sweep(trace, warmup: int, rounds: int) -> dict:
    """Full-grid constant-frequency run_stable sweep (profiling shape)."""
    spec = default_npu_spec()
    freqs = spec.frequencies.points
    fast_dev = NpuDevice(spec)
    ref_dev = NpuDevice(spec, engine=False)

    def sweep(device):
        return [
            device.run_stable(trace, FrequencyTimeline.constant(freq))
            for freq in freqs
        ]

    fast = time_rounds(lambda: sweep(fast_dev), warmup, rounds)
    ref = time_rounds(lambda: sweep(ref_dev), warmup, rounds)
    worst = 0.0
    for freq, fast_res, ref_res in zip(
        freqs, sweep(fast_dev), sweep(ref_dev)
    ):
        worst = max(
            worst,
            check_result_equivalence(
                fast_res, ref_res, f"sweep@{freq:.0f}MHz"
            ),
        )
    return {
        "trace": trace.name,
        "grid_points": len(freqs),
        "fast": fast,
        "reference": ref,
        "speedup": ref["best_seconds"] / fast["best_seconds"],
        "max_rel_error": worst,
    }


def bench_cluster(trace, n_devices: int, warmup: int, rounds: int) -> dict:
    """One synchronous baseline training step on an N-device fleet."""
    fast_cluster = SimulatedCluster(ClusterSpec(n_devices=n_devices))
    ref_cluster = SimulatedCluster(ClusterSpec(n_devices=n_devices))

    fast = time_rounds(lambda: fast_cluster.run_step(trace), warmup, rounds)

    def ref_step():
        with reference_only():
            return ref_cluster.run_step(trace)

    ref = time_rounds(ref_step, warmup, rounds)

    fast_step = fast_cluster.run_step(trace)
    ref_step_result = ref_step()
    worst = 0.0
    for field in ("step_us", "fleet_soc_energy_j", "fleet_aicore_energy_j"):
        err = _rel_err(
            getattr(fast_step, field), getattr(ref_step_result, field)
        )
        worst = max(worst, err)
        if err > EQUIV_REL_TOL:
            raise EquivalenceFailure(
                f"cluster: {field} diverged by {err:.3e}"
            )
    if fast_step.straggler_id != ref_step_result.straggler_id:
        raise EquivalenceFailure("cluster: straggler identity diverged")
    return {
        "trace": trace.name,
        "devices": n_devices,
        "fast": fast,
        "reference": ref,
        "fast_steps_per_second": 1.0 / fast["best_seconds"],
        "reference_steps_per_second": 1.0 / ref["best_seconds"],
        "speedup": ref["best_seconds"] / fast["best_seconds"],
        "max_rel_error": worst,
    }


def bench_ga(trace, warmup: int, rounds: int) -> dict:
    """GA search seconds/generation over a profiled model of ``trace``."""
    ga = GaConfig(population_size=64, iterations=40, seed=0)
    optimizer = EnergyOptimizer(OptimizerConfig(ga=ga))
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    from repro.dvfs.scoring import StrategyScorer

    scorer = StrategyScorer(
        trace=trace,
        stages=candidates.stages,
        perf_model=models.performance,
        power_table=models.power,
        freqs_mhz=optimizer.config.npu.frequencies.points,
        performance_loss_target=0.02,
    )
    freqs = optimizer.config.npu.frequencies.points
    timing = time_rounds(
        lambda: run_search(scorer, candidates.stages, freqs, ga),
        warmup,
        rounds,
    )
    result = run_search(scorer, candidates.stages, freqs, ga)
    return {
        "trace": trace.name,
        "stages": len(candidates.stages),
        "population": ga.population_size,
        "generations": result.generations,
        "timing": timing,
        "seconds_per_generation": timing["best_seconds"] / result.generations,
        "best_score": result.best_score,
    }


def bench_pipeline(trace, warmup: int, rounds: int) -> dict:
    """Cold-path strategy generation: profile -> fit -> score -> search.

    Fast arm: compiled-trace engine + batched cold path (the defaults).
    Reference arm: per-chunk execution loop + scalar cold path.  Offline
    calibration is shared (it is per-device, not per-workload, and would
    otherwise dominate both arms identically).

    Gates, both fatal:

    * byte-identical ``best_genes`` for seeds 0/1/2 between the batched
      and scalar cold paths (same execution engine, so the noise streams
      are comparable bit for bit);
    * fitted-model predictions within ``EQUIV_REL_TOL`` between the fast
      arm and the full reference arm (whose engine-off measurements
      differ at float rounding level).
    """
    spec = default_npu_spec()
    grid = np.asarray(spec.frequencies.points, dtype=float)
    constants = EnergyOptimizer(OptimizerConfig()).calibrate()

    def cold_path(seed=0):
        config = OptimizerConfig(
            ga=GaConfig(population_size=64, iterations=16, seed=seed),
            seed=seed,
        )
        optimizer = EnergyOptimizer(config)
        optimizer.use_calibration(constants)
        bundle = optimizer.profile(trace)
        models = optimizer.build_models(bundle)
        candidates = optimizer.preprocess(bundle)
        _, _, result = optimizer.search(trace, models, candidates)
        return models, result

    fast = time_rounds(lambda: cold_path(), warmup, rounds)

    def ref_cold_path(seed=0):
        with reference_only(), batching.reference_cold_path():
            return cold_path(seed)

    ref = time_rounds(lambda: ref_cold_path(), min(warmup, 1), rounds)

    # Determinism gate: the batched cold path must reproduce the scalar
    # one byte for byte (engine on in both arms).
    for seed in (0, 1, 2):
        _, batched_result = cold_path(seed)
        with batching.reference_cold_path():
            _, scalar_result = cold_path(seed)
        if (
            batched_result.best_genes.tobytes()
            != scalar_result.best_genes.tobytes()
        ):
            raise EquivalenceFailure(
                f"pipeline: best_genes diverged for seed {seed}"
            )

    # Model-prediction gate vs the full (engine-off) reference arm.
    fast_models, _ = cold_path()
    ref_models, _ = ref_cold_path()
    names = list(fast_models.performance.operators)
    if set(names) != set(ref_models.performance.operators):
        raise EquivalenceFailure("pipeline: operator sets diverged")
    worst = 0.0
    pairs = [
        (
            fast_models.performance.duration_matrix(names, grid),
            ref_models.performance.duration_matrix(names, grid),
            "duration",
        ),
        (
            fast_models.power.aicore_power_matrix(names, grid),
            ref_models.power.aicore_power_matrix(names, grid),
            "aicore_power",
        ),
        (
            fast_models.power.soc_power_matrix(names, grid),
            ref_models.power.soc_power_matrix(names, grid),
            "soc_power",
        ),
    ]
    for got, want, label in pairs:
        scale = np.maximum(np.maximum(np.abs(got), np.abs(want)), 1e-30)
        err = float((np.abs(got - want) / scale).max())
        worst = max(worst, err)
        if err > EQUIV_REL_TOL:
            raise EquivalenceFailure(
                f"pipeline: {label} matrix diverged by {err:.3e}"
            )

    # Surrogate arm: the same cold path with surrogate-assisted search.
    def surrogate_cold_path(seed=0):
        config = OptimizerConfig(
            ga=GaConfig(population_size=64, iterations=16, seed=seed),
            seed=seed,
        ).with_surrogate()
        optimizer = EnergyOptimizer(config)
        optimizer.use_calibration(constants)
        bundle = optimizer.profile(trace)
        models = optimizer.build_models(bundle)
        candidates = optimizer.preprocess(bundle)
        _, scorer, result = optimizer.search(trace, models, candidates)
        return scorer, result

    surrogate_timing = time_rounds(lambda: surrogate_cold_path(), warmup, rounds)

    # Gates, both fatal: the surrogate arm's best_score must be the exact
    # scorer's own number for its best genes (bitwise — the multi-fidelity
    # contract), and its quality must stay within 1% of the exact GA
    # unless the genes are byte-identical anyway.
    score_ratios = {}
    holdout_r2 = {}
    evaluations = {}
    surrogate_used_all = True
    for seed in (0, 1, 2):
        scorer, surr_result = surrogate_cold_path(seed)
        oracle = float(scorer.score(surr_result.best_genes[None, :])[0])
        if oracle != surr_result.best_score:
            raise EquivalenceFailure(
                f"pipeline: surrogate best_score is not the exact "
                f"scorer's value for seed {seed}"
            )
        _, exact_result = cold_path(seed)
        ratio = surr_result.best_score / exact_result.best_score
        score_ratios[str(seed)] = ratio
        identical = (
            surr_result.best_genes.tobytes()
            == exact_result.best_genes.tobytes()
        )
        if not identical and ratio < 0.99:
            raise EquivalenceFailure(
                f"pipeline: surrogate best_score fell {1 - ratio:.2%} "
                f"below the exact GA for seed {seed}"
            )
        surrogate_used_all = surrogate_used_all and surr_result.surrogate_used
        holdout_r2[str(seed)] = surr_result.surrogate_r2
        evaluations[str(seed)] = {
            "exact": exact_result.evaluations,
            "surrogate": surr_result.evaluations,
        }

    return {
        "trace": trace.name,
        "operators": len(trace.entries),
        "distinct_names": len(names),
        "grid_points": int(grid.size),
        "ga_population": 64,
        "ga_iterations": 16,
        "fast": fast,
        "reference": ref,
        "speedup": ref["best_seconds"] / fast["best_seconds"],
        "max_rel_error": worst,
        "best_genes_identical_seeds": [0, 1, 2],
        "surrogate": {
            "timing": surrogate_timing,
            "speedup_vs_exact": (
                fast["best_seconds"] / surrogate_timing["best_seconds"]
            ),
            "prior_best_seconds": PRIOR_PIPELINE_BEST_SECONDS,
            "speedup_vs_prior": (
                PRIOR_PIPELINE_BEST_SECONDS
                / surrogate_timing["best_seconds"]
            ),
            "surrogate_used": surrogate_used_all,
            "oracle_score_exact": True,
            "score_ratio_vs_exact": score_ratios,
            "holdout_r2": holdout_r2,
            "oracle_evaluations": evaluations,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload", default="gpt3", help="workload generator name"
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="workload scale factor"
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument(
        "--skip-ga", action="store_true",
        help="skip the GA section (it dominates smoke-run wall time)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated subset of sections to run "
        "(simulate,sweep,cluster,ga,pipeline)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--assert-surrogate-speedup",
        type=float,
        default=None,
        help="fail unless the pipeline surrogate arm's speedup over the "
        "prior checked-in cold path is at least this factor",
    )
    parser.add_argument(
        "--assert-surrogate-parity",
        type=float,
        default=None,
        help="fail unless every surrogate best_score/exact best_score "
        "ratio is at least this value (e.g. 0.99)",
    )
    args = parser.parse_args(argv)

    trace = generate(args.workload, scale=args.scale)
    print(
        f"workload={args.workload} scale={args.scale} "
        f"operators={len(trace.entries)}",
        flush=True,
    )

    report = {
        "meta": {
            "workload": args.workload,
            "scale": args.scale,
            "operators": len(trace.entries),
            "rounds": args.rounds,
            "warmup": args.warmup,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "equivalence_rel_tol": EQUIV_REL_TOL,
        },
        "benchmarks": {},
    }
    failed = False
    sections = [
        ("simulate", lambda: bench_simulate(trace, args.warmup, args.rounds)),
        ("sweep", lambda: bench_sweep(trace, args.warmup, args.rounds)),
        (
            "cluster",
            lambda: bench_cluster(
                trace, args.devices, args.warmup, args.rounds
            ),
        ),
    ]
    if not args.skip_ga:
        sections.append(
            ("ga", lambda: bench_ga(trace, min(args.warmup, 1), args.rounds))
        )
    sections.append(
        (
            "pipeline",
            lambda: bench_pipeline(trace, args.warmup, args.rounds),
        )
    )
    if args.only:
        wanted = {part.strip() for part in args.only.split(",") if part.strip()}
        unknown = wanted - {name for name, _ in sections}
        if unknown:
            parser.error(f"unknown sections: {sorted(unknown)}")
        sections = [(n, r) for n, r in sections if n in wanted]
    for name, runner in sections:
        print(f"[{name}] running ...", flush=True)
        try:
            section = runner()
        except EquivalenceFailure as exc:
            print(f"[{name}] EQUIVALENCE FAILURE: {exc}", file=sys.stderr)
            report["benchmarks"][name] = {"error": str(exc)}
            failed = True
            continue
        report["benchmarks"][name] = section
        if "speedup" in section:
            print(
                f"[{name}] speedup {section['speedup']:.2f}x "
                f"(fast {section['fast']['best_seconds']*1e3:.2f} ms, "
                f"reference {section['reference']['best_seconds']*1e3:.2f} ms, "
                f"max rel err {section['max_rel_error']:.2e})",
                flush=True,
            )
            if "surrogate" in section:
                surr = section["surrogate"]
                print(
                    f"[{name}] surrogate arm "
                    f"{surr['timing']['best_seconds']*1e3:.2f} ms "
                    f"({surr['speedup_vs_prior']:.2f}x vs prior "
                    f"{surr['prior_best_seconds']*1e3:.2f} ms cold path)",
                    flush=True,
                )
        else:
            print(
                f"[{name}] {section['seconds_per_generation']*1e3:.2f} "
                "ms/generation",
                flush=True,
            )

    surrogate_section = report["benchmarks"].get("pipeline", {}).get(
        "surrogate"
    )
    if args.assert_surrogate_speedup is not None:
        if surrogate_section is None:
            print(
                "--assert-surrogate-speedup needs the pipeline section",
                file=sys.stderr,
            )
            failed = True
        elif (
            surrogate_section["speedup_vs_prior"]
            < args.assert_surrogate_speedup
        ):
            print(
                f"surrogate speedup "
                f"{surrogate_section['speedup_vs_prior']:.2f}x below the "
                f"{args.assert_surrogate_speedup:.2f}x floor",
                file=sys.stderr,
            )
            failed = True
    if args.assert_surrogate_parity is not None:
        if surrogate_section is None:
            print(
                "--assert-surrogate-parity needs the pipeline section",
                file=sys.stderr,
            )
            failed = True
        else:
            worst_ratio = min(
                surrogate_section["score_ratio_vs_exact"].values()
            )
            if worst_ratio < args.assert_surrogate_parity:
                print(
                    f"surrogate score ratio {worst_ratio:.4f} below the "
                    f"{args.assert_surrogate_parity:.4f} floor",
                    file=sys.stderr,
                )
                failed = True

    report["equivalence_ok"] = not failed
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failed:
        return 1
    for name, section in report["benchmarks"].items():
        if "max_rel_error" in section and not math.isfinite(
            section["max_rel_error"]
        ):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
