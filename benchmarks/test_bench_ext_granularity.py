"""Benchmark: savings vs adjustment-interval granularity sweep."""

from repro.experiments import run_experiment


def test_bench_ext_granularity(run_once):
    result = run_once(
        run_experiment, "ext_granularity", scale=0.05,
        iterations=200, population=80,
    )
    # Finer control is never worse, and SetFreq counts shrink with the
    # interval (Fig. 18's trend, as a full curve).
    assert result.measured["finer_is_better"]
    assert result.measured["setfreq_monotone_nonincreasing"]
    assert result.measured["finest_reduction"] > 0.04
