"""Benchmark: Fig. 14 anchoring-mechanism ablation."""

from repro.experiments import run_experiment


def test_bench_fig14(run_once):
    result = run_once(
        run_experiment, "fig14", scale=0.06, iterations=200, population=80,
    )
    assert result.measured["anchoring_helps"]
    assert result.measured["anchored_within_target"]
