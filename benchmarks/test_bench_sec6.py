"""Benchmark: Sect. 6 operator-sensitivity trade-offs."""

from repro.experiments import run_experiment


def test_bench_sec6(run_once):
    result = run_once(run_experiment, "sec6", scale=0.05)
    # Memory-bound operators give a strictly better power-per-performance
    # exchange than compute-bound MatMuls (the Sect. 6 motivation).
    assert result.measured["gelu_exchange_beats_matmul"]
    assert result.measured["memory_ops_lead_ranking"]
