"""Benchmark: graceful degradation of the guarded runtime under faults."""

from repro.experiments import run_experiment


def test_bench_ext_fault_tolerance(run_once):
    result = run_once(
        run_experiment, "ext_fault_tolerance", scale=0.05,
        iterations=120, population=60,
    )
    # The safety envelope: savings degrade monotonically with the fault
    # rate, and the measured loss never exceeds target + guard margin at
    # any injected rate.
    assert result.measured["degrades_monotonically"]
    assert result.measured["loss_target_never_violated"]
    assert all(
        loss <= result.measured["loss_limit"]
        for loss in result.measured["max_loss_by_rate"]
    )
