"""Benchmark: Sect. 8.1 model-based vs model-free search comparison."""

from repro.experiments import run_experiment


def test_bench_sec81(run_once):
    result = run_once(run_experiment, "sec81", scale=0.03)
    # The model-based scorer is orders of magnitude faster than executing
    # each candidate (paper: 20,000 strategies vs ~30 in the same time).
    assert result.measured["speed_ratio"] > 100.0
    assert result.measured["model_based_finds_better"]
