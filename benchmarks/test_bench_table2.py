"""Benchmark: regenerate Table 2 (power-model error buckets)."""

from repro.experiments import run_experiment


def test_bench_table2(run_once):
    result = run_once(run_experiment, "table2", scale=0.1)
    # Paper: average error 4.62%; gamma = 0 ablation degrades to 4.97%.
    assert result.measured["mean_error"] < 0.07
    assert result.measured["thermal_term_helps"]
    fractions = [float(r["fraction"].rstrip("%")) / 100 for r in result.rows[:-1]]
    assert abs(sum(fractions) - 1.0) < 1e-6
    # The bulk of predictions land within 10% (paper: >80%).
    assert sum(fractions[:3]) > 0.8
