"""Benchmark: whole-program DVFS baseline vs operator-level DVFS."""

from repro.experiments import run_experiment


def test_bench_ext_whole_program(run_once):
    result = run_once(
        run_experiment, "ext_whole_program", scale=0.05,
        iterations=200, population=100,
    )
    # Any global frequency cut blows the 2% budget on training, so the
    # whole-program baseline is stuck at (or next to) the maximum.
    assert result.measured["best_whole_program_reduction"] < 0.02
    assert result.measured["fine_grained_wins"]
    assert result.measured["advantage"] > 0.03
