"""Benchmark: regenerate Fig. 9 (voltage-frequency curve)."""

from repro.experiments import run_experiment


def test_bench_fig09(run_once):
    result = run_once(run_experiment, "fig09")
    assert result.measured["flat_below_knee"]
    assert result.measured["linear_above_knee"]
    assert result.measured["knee_mhz"] == 1300.0
    volts = [row["volts"] for row in result.rows]
    assert volts == sorted(volts)
