"""Benchmark: vectorized fleet scaling with hierarchical collectives.

The acceptance bar for the fleet layer: the stacked-array simulator
reproduces the looped cluster to <= 1e-9 (durations bitwise, plans
byte-identical), reclamation still saves fleet energy at zero step-time
regression at hundreds of devices, the hierarchical collective never
loses to the flat ring, churn replays are bit-identical, the store
round-trip serves every device warm, and the vectorized barrier step
sustains a real step rate at thousands of devices.
"""

from repro.experiments import run_experiment


def test_bench_ext_fleet_scale(run_once):
    result = run_once(
        run_experiment, "ext_fleet_scale", scale=0.02,
        devices=256, scaling_sizes=(64, 256, 1024),
    )
    measured = result.measured
    # Equivalence: the vectorization must not change the physics.
    assert measured["equivalence_ok"]
    assert measured["plans_byte_identical"]
    assert measured["durations_bitwise"]
    assert measured["equivalence_max_rel_err"] <= 1e-9
    # Energy: fleet savings at zero step-time regression, at scale.
    assert measured["soc_energy_savings"] > 0.0
    assert measured["step_time_regression"] <= 0.005
    # Collectives: hierarchical never slower than the flat ring, and
    # exactly the ring law inside one rack.
    assert measured["hierarchical_not_slower"]
    assert measured["single_rack_exact_ring"]
    # Elasticity: seeded churn replays bit-identically.
    assert measured["churn_events"] >= 1
    assert measured["churn_replay_identical"]
    # Store: the warm path serves every active device.
    assert measured["identical_through_store"]
    assert measured["store_warm_hits"] == measured["devices"]
    # Throughput: the vectorized step sustains a real rate at the
    # largest scaling size (the 10k-device point lives in
    # BENCH_fleet.json with a 50 steps/s floor in CI).
    assert measured["scaling_min_steps_per_s"] > 50.0
