"""Benchmark: Sect. 8.2 uncore-DVFS potential study."""

from repro.experiments import run_experiment


def test_bench_ext_uncore(run_once):
    result = run_once(run_experiment, "ext_uncore", scale=0.05)
    # SoC savings scale with the uncore clock cut...
    assert result.measured["savings_scale_with_uncore"]
    # ...and bandwidth-bound decode pays more latency than training.
    assert result.measured["training_tolerates_better"]
    assert result.measured["training_soc_cut_at_0p8"] > 0.04
