"""Benchmark: slack-reclaiming cluster DVFS on a varied fleet.

The acceptance bar for the cluster layer: on an 8-device fleet with
seeded variation, slack reclamation measurably cuts fleet SoC energy at
a step-time regression within 0.5%; the plan is byte-identical across
worker counts, repeated runs, and the strategy-store round-trip; and
when a device is fault-injected slow, the stale plan raises a barrier
overrun naming that device and re-reclamation targets it as the new
straggler.
"""

from repro.experiments import run_experiment


def test_bench_ext_cluster(run_once):
    result = run_once(
        run_experiment, "ext_cluster", scale=0.02,
        iterations=40, population=24,
    )
    measured = result.measured
    # Energy: measurable fleet savings at <= 0.5% step-time regression.
    assert measured["soc_energy_savings"] > 0.0
    assert measured["step_time_regression"] <= 0.005
    # The GA cross-check never loses to uniform max frequency.
    assert measured["ga_feasible"]
    assert measured["ga_soc_energy_savings"] >= 0.0
    assert measured["ga_step_time_regression"] <= 0.005
    # Determinism: byte-identical plans at any worker count, across
    # repeated runs, and through the persistent strategy store.
    assert measured["identical_across_workers"]
    assert measured["identical_across_runs"]
    assert measured["identical_through_store"]
    assert measured["store_warm_hits"] == measured["devices"]
    # Fault story: the degraded device overruns the stale barrier (the
    # incident names it), its injector logged the degradation, and
    # re-reclamation re-targets it as the straggler.
    assert measured["barrier_overruns"] >= 1
    assert measured["overrun_names_victim"]
    assert measured["victim_degradation_logged"]
    assert measured["retargeted_straggler"] == measured["degraded_device"]
    assert measured["retargeted_soc_energy_savings"] > 0.0
