"""Benchmark: seed robustness of the end-to-end optimization."""

from repro.experiments import run_experiment


def test_bench_ext_robustness(run_once):
    result = run_once(
        run_experiment, "ext_robustness", scale=0.04,
        iterations=200, population=80, seeds=3,
    )
    assert result.measured["all_losses_within_target"]
    assert result.measured["spread_is_small"]
