"""Benchmark: regenerate Fig. 17 (GA convergence trajectories)."""

from repro.experiments import run_experiment


def test_bench_fig17(run_once):
    result = run_once(
        run_experiment, "fig17", scale=0.06, iterations=400, population=120,
    )
    # Every search plateaus before its budget and runs in ~a second
    # (paper: within 500 rounds, each search within 2.5 s).
    assert result.measured["latest_convergence"] <= 400
    assert result.measured["searches_under_2p5_seconds"]
    # Scores only improve (elitism) and the search ends feasible.
    for row in result.rows:
        assert row["final_best"] >= row["initial_best"]
        assert row["final_best"] > 2.0  # beats the all-max baseline
