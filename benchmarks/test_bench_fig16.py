"""Benchmark: regenerate Fig. 16 (five representative operators)."""

from repro.experiments import run_experiment


def test_bench_fig16(run_once):
    result = run_once(run_experiment, "fig16")
    # Durations span the paper's 20-300 us band (roughly).
    low, high = result.measured["duration_span_us"].split("-")
    assert float(low) < 60.0 and float(high) > 150.0
    # Func. 2 captures the running-time variation closely.
    assert result.measured["func2_mean_error"] < 0.05
    assert result.measured["func2_worst_error"] < 0.15
