"""Benchmark: regenerate the Sect. 8.4 host-bound inference scenario."""

from repro.experiments import run_experiment


def test_bench_sec84(run_once):
    result = run_once(run_experiment, "sec84", scale=0.5)
    # Dropping everything to 1300 MHz costs little time (idle absorbs it)
    # but cuts AICore power substantially — the paper's 2.48% / 25% trade.
    assert result.measured["perf_loss"] < 0.06
    assert result.measured["aicore_reduction"] > 0.15
    assert result.measured["baseline_idle_fraction"] > 0.2
    assert result.measured["loss_far_below_frequency_cut"]
