"""Benchmark: regenerate Table 3 (end-to-end energy optimization)."""

from repro.experiments import run_experiment


def test_bench_table3(run_once):
    result = run_once(
        run_experiment, "table3", scale=0.05, iterations=250, population=100,
    )
    assert result.measured["gpt3_savings_monotone_in_target"]
    # The production 2% target yields real savings at small measured loss.
    assert result.measured["avg_aicore_reduction_at_2pct"] > 0.04
    assert result.measured["avg_perf_loss_at_2pct"] < 0.025
    # AICore savings are several times the SoC savings (paper: 13.4 vs 5.0).
    for row in result.rows:
        aicore = float(row["aicore_reduction"].rstrip("%"))
        soc = float(row["soc_reduction"].rstrip("%"))
        assert aicore >= soc
