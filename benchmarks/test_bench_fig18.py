"""Benchmark: regenerate Fig. 18 (delayed / coarse DVFS comparisons)."""

from repro.experiments import run_experiment


def test_bench_fig18(run_once):
    result = run_once(
        run_experiment, "fig18", scale=0.12, iterations=250, population=100,
    )
    assert result.measured["delay_degrades_efficiency"]
    assert result.measured["delay_breaks_loss_target"]
    assert result.measured["delay_worsens_perf"]
    assert result.measured["coarse_fai_fewer_setfreq"]
    assert result.measured["coarse_fai_less_savings"]
