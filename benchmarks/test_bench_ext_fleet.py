"""Benchmark: fleet-scale strategy serving vs per-request optimization.

The acceptance bar for the serving layer: at a 90%-repeat request
stream, the store-backed service beats naive per-request optimization by
>= 10x across a fleet session (cold + warm restart), while remaining
byte-identical to the serial baseline; the warm restart serves entirely
from the persisted store with zero GA runs.
"""

from repro.experiments import run_experiment


def test_bench_ext_fleet(run_once):
    result = run_once(
        run_experiment, "ext_fleet", scale=0.02,
        iterations=40, population=30,
    )
    measured = result.measured
    assert measured["repeat_ratio"] == 0.9
    # Amortization: >= 10x over naive per-request optimization.
    assert measured["speedup"] >= 10.0
    # Determinism: pool/cache/coalesced paths all byte-identical to the
    # per-request serial baseline.
    assert measured["identical_to_serial"]
    # One GA run per distinct workload, never more.
    assert measured["cold_ga_runs"] == measured["distinct_workloads"]
    # Restart survival: the warm service finds every fingerprint in the
    # persisted store — >= 90% hits required, zero GA runs for repeats.
    assert measured["warm_hit_rate"] >= 0.9
    assert measured["warm_ga_runs"] == 0
    assert measured["warm_disk_hits"] == measured["distinct_workloads"]
