"""Benchmark: regenerate the Sect. 4.3 fitting-cost comparison."""

from repro.experiments import run_experiment


def test_bench_sec43(run_once):
    result = run_once(run_experiment, "sec43", scale=1.0)
    # The full ShuffleNetV2Plus population (paper: 4,343 operators).
    assert result.measured["operators"] == 4343
    assert result.measured["func2_wins"]
    # The closed form is at least several times faster than curve_fit.
    assert result.measured["speedup"] > 3.0
