"""Benchmark: regenerate Fig. 15 (performance-model error CDFs)."""

from repro.experiments import run_experiment

#: Two smaller workloads keep the benchmark run in tens of seconds while
#: still spanning CNN and transformer operator populations.
WORKLOADS = ("resnet50", "bert")


def test_bench_fig15(run_once):
    result = run_once(
        run_experiment, "fig15", scale=0.15, workloads=WORKLOADS,
        include_func3=True,
    )
    func2 = result.measured["func2_mean_error"]
    func1 = result.measured["func1_mean_error"]
    func3 = result.measured["func3_mean_error"]
    # Paper: Func. 2 averages ~2% and stays comparable to Func. 1; Func. 3
    # (bounded exponential) is the worst of the three.
    assert func2 < 0.04
    assert func2 < 2.5 * func1
    assert func3 >= func1
    # Sect. 7.2's composition claim: tiny operators dominate the count but
    # not the time (paper: 58.3% of operators, 0.9% of time).
    assert result.measured["short_op_count_fraction"] > 0.4
    assert result.measured["short_op_time_fraction"] < 0.05
